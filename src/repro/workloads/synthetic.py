"""Declarative synthetic workloads: one collection context per spec.

The six named workloads reproduce the paper's benchmarks; this module
generates *arbitrary* collection-usage patterns from a declarative
description, which is what the property-based end-to-end tests fuzz the
whole tool with: for any combination of contexts -- types, sizes,
operation mixes, lifetimes -- the tool's suggestions must be *sound*
(applying them never corrupts behaviour and does not regress footprint).

A :class:`ContextSpec` describes one allocation context; a
:class:`SyntheticWorkload` executes a list of them deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.collections.wrappers import (ChameleonList, ChameleonMap,
                                        ChameleonSet)
from repro.runtime.context import ContextKey
from repro.runtime.vm import RuntimeEnvironment
from repro.workloads.base import Workload

__all__ = ["ContextSpec", "SyntheticWorkload"]


@dataclass(frozen=True)
class ContextSpec:
    """One allocation context's usage pattern.

    Attributes:
        name: Context label (becomes the synthetic allocation context).
        src_type: Program-visible collection type (``"HashMap"``,
            ``"ArrayList"``, ``"LinkedList"``, ``"HashSet"``).
        instances: How many collections the context allocates.
        sizes: Element counts, cycled across instances (``[0]`` for
            always-empty contexts, ``[5]`` for stable, ``[2, 400]`` for
            wild mixes).
        initial_capacity: Explicit requested capacity, or ``None``.
        reads_per_element: ``get``/``contains`` traffic after filling.
        indexed_reads: For lists: whether reads use ``get(i)``.
        removals: Elements removed again after filling.
        iterations: Iterator creations per instance.
        long_lived: Pinned until end of run (else dies mid-run).
    """

    name: str
    src_type: str = "HashMap"
    instances: int = 8
    sizes: Sequence[int] = (4,)
    initial_capacity: Optional[int] = None
    reads_per_element: int = 2
    indexed_reads: bool = False
    removals: int = 0
    iterations: int = 0
    long_lived: bool = True

    def size_for(self, index: int) -> int:
        """The element count for the ``index``-th instance."""
        return self.sizes[index % len(self.sizes)]


class SyntheticWorkload(Workload):
    """Executes a list of :class:`ContextSpec` patterns deterministically."""

    name = "synthetic"

    def __init__(self, specs: Sequence[ContextSpec], seed: int = 2009,
                 scale: float = 1.0, manual_fixes: bool = False) -> None:
        super().__init__(seed, scale, manual_fixes)
        if not specs:
            raise ValueError("need at least one context spec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("context spec names must be unique")
        self.specs = list(specs)
        #: Filled per run: spec name -> list of per-instance final
        #: contents, for behavioural equivalence checks across policies.
        self.observed: dict = {}

    def fresh(self) -> "SyntheticWorkload":
        return type(self)(self.specs, seed=self.seed, scale=self.scale,
                          manual_fixes=self.manual_fixes)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, vm: RuntimeEnvironment) -> None:
        self.observed = {}
        anchor = vm.allocate_data("SyntheticRoot", ref_fields=2)
        vm.add_root(anchor)
        transient_pool: List = []
        for spec in self.specs:
            self.observed[spec.name] = [
                self._run_instance(vm, anchor, spec, index, transient_pool)
                for index in range(spec.instances)]
        # Give short-lived instances a chance to die and be aggregated.
        for collection in transient_pool:
            collection.unpin()
        vm.collect()

    def _run_instance(self, vm, anchor, spec: ContextSpec, index: int,
                      transient_pool: List):
        key = ContextKey.synthetic(spec.name, "synthetic.run")
        collection = self._allocate(vm, spec, key)
        if spec.long_lived:
            anchor.add_ref(collection.heap_obj.obj_id)
        else:
            collection.pin()
            transient_pool.append(collection)
        size = spec.size_for(index)
        self._fill(collection, spec, size)
        self._read(collection, spec, size)
        for _ in range(spec.iterations):
            list(collection.iterate()
                 if not isinstance(collection, ChameleonMap)
                 else collection.iterate_keys())
        self._remove(collection, spec, size)
        return self._contents(collection)

    def _allocate(self, vm, spec: ContextSpec, key: ContextKey):
        if spec.src_type in ("HashMap", "LinkedHashMap", "Map"):
            return ChameleonMap(vm, src_type=spec.src_type, context=key,
                                initial_capacity=spec.initial_capacity)
        if spec.src_type in ("HashSet", "LinkedHashSet", "Set"):
            return ChameleonSet(vm, src_type=spec.src_type, context=key,
                                initial_capacity=spec.initial_capacity)
        return ChameleonList(vm, src_type=spec.src_type, context=key,
                             initial_capacity=spec.initial_capacity)

    @staticmethod
    def _fill(collection, spec: ContextSpec, size: int) -> None:
        if isinstance(collection, ChameleonMap):
            for element in range(size):
                collection.put(element, element * 10)
        else:
            for element in range(size):
                collection.add(element)

    @staticmethod
    def _read(collection, spec: ContextSpec, size: int) -> None:
        for _ in range(spec.reads_per_element):
            for element in range(size):
                if isinstance(collection, ChameleonMap):
                    collection.get(element)
                elif isinstance(collection, ChameleonSet):
                    collection.contains(element)
                elif spec.indexed_reads:
                    collection.get(element)
                else:
                    collection.contains(element)

    @staticmethod
    def _remove(collection, spec: ContextSpec, size: int) -> None:
        for element in range(min(spec.removals, size)):
            if isinstance(collection, ChameleonMap):
                collection.remove_key(element)
            elif isinstance(collection, ChameleonSet):
                collection.remove_value(element)
            else:
                collection.remove_value(element)

    @staticmethod
    def _contents(collection):
        if isinstance(collection, ChameleonMap):
            return sorted(collection.snapshot_items())
        return sorted(collection.snapshot())
