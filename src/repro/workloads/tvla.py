"""TVLA-like workload: abstract interpretation over parametric structures.

Section 2.1 / 5.3 signature being reproduced:

* "Most of the heap in TVLA is dedicated to storing the abstract program
  states"; "most of the collection data is stored in HashMaps from seven
  contexts" -- each abstract state here owns seven small HashMaps, each
  allocated through its own factory function (so each gets its own
  depth-2 allocation context, including the factory frame, which is why
  the paper tracks call-stack contexts rather than sites).
* Map sizes are small and stable (a handful of predicate interpretations
  per map), which is what lets the HashMap -> ArrayMap rule fire; the
  paper reports a 53.95% minimal-heap reduction from exactly that
  replacement.
* "CHAMELEON also pointed an initial size setting for several contexts and
  LinkedList that can be replaced by an ArrayList": the composition buffer
  below grows far past the default ArrayList capacity (incremental
  resizing), and the trace log is a LinkedList read with ``get(i)``
  (random access).
* Collections constitute the bulk of live data (the Fig. 2 curve: up to
  ~70% live / ~40% used), so the collection fixes translate almost fully
  into footprint savings.

The exploration itself is a deterministic BFS over synthetic abstract
states: each new state copies its parent's predicate maps, perturbs one
entry, and is deduplicated through a signature set.
"""

from __future__ import annotations

from typing import List

from repro.collections.wrappers import ChameleonList, ChameleonMap, ChameleonSet
from repro.runtime.vm import RuntimeEnvironment
from repro.workloads.base import Workload

__all__ = ["TvlaWorkload"]

_PREDICATE_GROUPS = ("unary", "binary", "nullary", "instrum",
                     "absorption", "sharing", "reachability")


class TvlaWorkload(Workload):
    """Abstract-interpretation workload with HashMap-heavy states."""

    name = "tvla"

    def __init__(self, seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        super().__init__(seed, scale, manual_fixes)
        self.num_states = self.scaled(400)
        self.entries_per_map = 5
        self.verify_passes = 2

    # ------------------------------------------------------------------
    # Seven per-group map factories: seven distinct allocation contexts.
    # ------------------------------------------------------------------
    def _make_unary_map(self, vm) -> ChameleonMap:
        return ChameleonMap(vm, src_type="HashMap")

    def _make_binary_map(self, vm) -> ChameleonMap:
        return ChameleonMap(vm, src_type="HashMap")

    def _make_nullary_map(self, vm) -> ChameleonMap:
        return ChameleonMap(vm, src_type="HashMap")

    def _make_instrum_map(self, vm) -> ChameleonMap:
        return ChameleonMap(vm, src_type="HashMap")

    def _make_absorption_map(self, vm) -> ChameleonMap:
        return ChameleonMap(vm, src_type="HashMap")

    def _make_sharing_map(self, vm) -> ChameleonMap:
        return ChameleonMap(vm, src_type="HashMap")

    def _make_reachability_map(self, vm) -> ChameleonMap:
        return ChameleonMap(vm, src_type="HashMap")

    def _map_factories(self):
        return (self._make_unary_map, self._make_binary_map,
                self._make_nullary_map, self._make_instrum_map,
                self._make_absorption_map, self._make_sharing_map,
                self._make_reachability_map)

    # ------------------------------------------------------------------
    # The exploration
    # ------------------------------------------------------------------
    def run(self, vm: RuntimeEnvironment) -> None:
        rng = self.rng()
        model_fix = self.manual_fixes

        # Shared symbol table: predicate names (keys) and truth values
        # (values) are shared across every state, so the maps dominate
        # the per-state footprint as in the real TVLA.
        predicates = {}
        truth_values = []
        symbol_holder = vm.allocate_data("SymbolTable", ref_fields=4)
        vm.add_root(symbol_holder)
        for group in _PREDICATE_GROUPS:
            predicates[group] = []
            for index in range(self.entries_per_map + 3):
                pred = vm.allocate_data("Predicate", ref_fields=1,
                                        int_fields=1)
                symbol_holder.add_ref(pred.obj_id)
                predicates[group].append(pred)
        for index in range(4):
            value = vm.allocate_data("Kleene", int_fields=1)
            symbol_holder.add_ref(value.obj_id)
            truth_values.append(value)

        # The state space: abstract states live until the end of the run.
        signature_set = ChameleonSet(vm, src_type="HashSet",
                                     initial_capacity=256)
        signature_set.pin()
        state_records: List = []

        def make_state(parent_maps, mutate_group: int):
            """Build one abstract state: seven predicate maps + record."""
            maps = []
            for group_index, factory in enumerate(self._map_factories()):
                group = _PREDICATE_GROUPS[group_index]
                # Pinned until the AbstractState record owns it: the puts
                # below allocate (entries, boxes) and may trigger a GC
                # while the map is only reachable from this Python frame.
                new_map = factory(vm).pin()
                if parent_maps is None:
                    for i in range(self.entries_per_map):
                        new_map.put(predicates[group][i],
                                    truth_values[i % len(truth_values)])
                else:
                    parent = parent_maps[group_index]
                    for i in range(self.entries_per_map):
                        key = predicates[group][i]
                        value = parent.get(key)
                        if group_index == mutate_group and i == 0:
                            value = truth_values[rng.randrange(
                                len(truth_values))]
                        new_map.put(key, value)
                maps.append(new_map)
            record = vm.allocate_data("AbstractState", ref_fields=8)
            vm.add_root(record)
            for state_map in maps:
                record.add_ref(state_map.heap_obj.obj_id)
                state_map.unpin()
            # Non-collection state payload: the universe of individuals
            # and node structures, keeping collections at roughly the
            # Fig. 2 share of live data rather than all of it.
            universe = vm.allocate("Universe", 128)
            record.add_ref(universe.obj_id)
            for _ in range(3):
                node = vm.allocate_data("Individual", ref_fields=4,
                                        int_fields=4)
                record.add_ref(node.obj_id)
            state_records.append((record, maps))
            # Exploration work: join/update against the parent state.
            for _ in range(2):
                vm.allocate("TempStructure", 512)
            vm.charge(800)
            return maps

        # Trace log of explored states: a LinkedList later read with
        # get(i) -- the replace-with-ArrayList context.
        trace_log = ChameleonList(
            vm, src_type="ArrayList" if model_fix else "LinkedList")
        trace_log.pin()

        # BFS exploration.
        initial = make_state(None, mutate_group=0)
        frontier = [initial]
        explored = 1
        while explored < self.num_states and frontier:
            parent_maps = frontier.pop(0)
            for mutate_group in range(2):
                if explored >= self.num_states:
                    break
                child = make_state(parent_maps,
                                   mutate_group=(explored + mutate_group)
                                   % len(_PREDICATE_GROUPS))
                signature = self._signature(child, explored)
                if signature_set.add(signature):
                    frontier.append(child)
                    trace_log.add(explored)
                explored += 1

        # Composition buffers: each grows far past the default capacity --
        # the incremental-resizing (set initial capacity) context.  A
        # manual fix sizes them up front.  They persist with the analysis
        # results, so their slack shows up in the heap statistics.
        composed_size = 8 * self.entries_per_map + 20
        buffer_count = max(self.num_states // 16, 8)
        for _ in range(buffer_count):
            buffer = ChameleonList(
                vm, src_type="ArrayList",
                initial_capacity=composed_size if model_fix else None)
            buffer.pin()
            for i in range(composed_size):
                buffer.add(truth_values[i % len(truth_values)])
            for i in range(0, composed_size, 2):
                buffer.get(i)

        # Verification passes: random-access reads over the trace log and
        # re-reads of every state's maps (the get-dominated distribution
        # of Fig. 3's contexts 1, 3 and 4).  Each pass temporarily holds
        # *join scratch* -- pseudo-states built through the same seven
        # factories while comparing against the state space -- which sets
        # the run's live peak about 10% above the steady state-space size.
        # The verification's abstract operations also churn short-lived
        # scratch structures; with the original collections the heap has
        # almost no headroom above the state space, so a minimal-heap run
        # collects constantly -- the GC thrash whose relief is the bulk
        # of the paper's 2.5x running-time win.
        join_states = max(self.num_states // 10, 2)
        for _ in range(self.verify_passes):
            scratch_holder = vm.allocate_data("JoinScratch", ref_fields=2)
            vm.add_root(scratch_holder)
            reference_maps = state_records[-1][1]
            for _ in range(join_states):
                for group_index, factory in enumerate(self._map_factories()):
                    group = _PREDICATE_GROUPS[group_index]
                    join_map = factory(vm)
                    scratch_holder.add_ref(join_map.heap_obj.obj_id)
                    for i in range(self.entries_per_map):
                        key = predicates[group][i]
                        join_map.put(key,
                                     reference_maps[group_index].get(key))
            log_size = len(trace_log)
            for i in range(0, log_size, 3):
                trace_log.get(i)
            for record, maps in state_records:
                for group_index, state_map in enumerate(maps):
                    group = _PREDICATE_GROUPS[group_index]
                    for i in range(self.entries_per_map):
                        state_map.get(predicates[group][i])
                for _ in range(2):
                    vm.allocate("TempStructure", 1024)
                vm.charge(1600)
            vm.remove_root(scratch_holder)

    @staticmethod
    def _signature(maps, salt: int) -> int:
        """A cheap deterministic state signature for deduplication."""
        return (salt * 2654435761) & 0xFFFFFFF
