"""Tiny-scale smoke runs of the heavyweight experiment runners.

The shape assertions live in ``benchmarks/``; these tests only verify
that each runner completes, produces well-formed rows, and agrees with
its own accessors -- so a refactor cannot silently break the harness
between benchmark runs.
"""

import pytest

from repro.analysis import experiments

SCALE = 0.1
RESOLUTION = 16 * 1024


@pytest.fixture(scope="module")
def fig6():
    return experiments.run_fig6(scale=SCALE, resolution=RESOLUTION)


@pytest.fixture(scope="module")
def fig7():
    return experiments.run_fig7(scale=SCALE, resolution=RESOLUTION)


class TestFig6Runner:
    def test_two_rows_per_benchmark(self, fig6):
        names = {row.benchmark for row in fig6.rows}
        assert names == {"tvla", "soot", "findbugs", "bloat", "fop", "pmd"}
        assert len(fig6.rows) == 12

    def test_accessors_match_rows(self, fig6):
        for name in ("tvla", "pmd"):
            # At tiny scale a replacement that saves nothing (pmd) can
            # land a few bytes past base on GC-timing noise; allow
            # sub-half-percent slack but still catch real regressions.
            assert -0.005 <= fig6.auto_reduction(name) <= 1.0
            assert fig6.reduction(name) >= fig6.auto_reduction(name) - 1e-9

    def test_details_carry_byte_counts(self, fig6):
        detail = fig6.details["tvla"]
        assert detail["auto"] <= detail["base"]
        assert detail["manual"] <= detail["base"]

    def test_unknown_benchmark_raises(self, fig6):
        with pytest.raises(KeyError):
            fig6.reduction("quake")

    def test_render_mentions_paper_values(self, fig6):
        text = fig6.render()
        assert "min-heap saved" in text
        assert "53.9%" in text  # TVLA's paper number

    def test_directional_shape_even_at_tiny_scale(self, fig6):
        assert fig6.reduction("tvla") > fig6.reduction("pmd")
        assert fig6.reduction("bloat") > fig6.reduction("fop")


class TestFig7Runner:
    def test_one_row_per_benchmark(self, fig7):
        assert len(fig7.rows) == 6

    def test_speedup_accessor(self, fig7):
        assert fig7.speedup("tvla") >= 1.0
        with pytest.raises(KeyError):
            fig7.speedup("quake")

    def test_gc_cycles_recorded(self, fig7):
        base, optimized = fig7.gc_cycles["tvla"]
        assert base >= optimized

    def test_render(self, fig7):
        assert "original minimal heap" in fig7.render()


class TestOverheadRunner:
    def test_modes_and_accessor(self):
        result = experiments.run_profiling_overhead(scale=SCALE)
        assert len(result.rows) == 3  # one workload, three postures
        assert result.overhead("tvla", "vm-only overhead") == 0.0
        assert result.overhead("tvla", "full-profiling overhead") > 0.0
        with pytest.raises(KeyError):
            result.overhead("tvla", "no-such-mode")

    def test_fresh_instance_per_posture(self):
        """Each posture must run a fresh workload instance: a workload
        whose work grows with instance reuse would otherwise report a
        phantom vm-only overhead."""
        from repro.workloads.base import Workload

        class StatefulWorkload(Workload):
            name = "stateful"

            def run(self, vm):
                self._runs = getattr(self, "_runs", 0) + 1
                for _ in range(self.scaled(40) * self._runs):
                    vm.allocate_data("Item", int_fields=2)

        result = experiments.run_profiling_overhead(
            scale=0.2, benchmarks=(StatefulWorkload,))
        assert result.overhead("stateful", "vm-only overhead") == 0.0


class TestOnlineRunner:
    def test_two_rows_per_benchmark(self):
        from repro.workloads import TvlaWorkload, PmdWorkload
        result = experiments.run_online(scale=SCALE,
                                        benchmarks=(TvlaWorkload,
                                                    PmdWorkload))
        assert len(result.rows) == 4
        assert result.slowdown("pmd") > result.slowdown("tvla") >= 1.0
