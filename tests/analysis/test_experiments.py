"""Experiment runners (smoke tests at tiny scale; shape assertions live in
benchmarks/)."""

import pytest

from repro.analysis import experiments
from repro.analysis.tables import ExperimentRow, format_pct, render_series, render_table

SCALE = 0.12


class TestTables:
    def test_format_pct(self):
        assert format_pct(0.525) == "52.5%"
        assert format_pct(None) == "n/a"

    def test_render_table(self):
        rows = [ExperimentRow("tvla", "min-heap saved", 0.5395, 0.52),
                ExperimentRow("tvla", "speedup", 2.58, 2.2, unit="x"),
                ExperimentRow("fop", "count", None, 3.0, unit="")]
        text = render_table("Fig. X", rows)
        assert "53.9%" in text and "52.0%" in text
        assert "2.58x" in text and "2.20x" in text
        assert "n/a" in text

    def test_render_series(self):
        text = render_series("S", ("a", "b"), [(1, 0.5), (2, 0.25)])
        assert "0.500" in text and "0.250" in text


class TestRunners:
    def test_fig2_series_shape(self):
        result = experiments.run_fig2(scale=SCALE,
                                      gc_threshold_bytes=24 * 1024)
        assert len(result.series) >= 3
        for _, live, used, core in result.series:
            assert 0.0 <= core <= used <= live <= 1.0
        assert result.peak_live_fraction > result.peak_used_fraction
        assert "cycle" in result.render()

    def test_fig3_top_contexts(self):
        result = experiments.run_fig3(scale=SCALE, top=4)
        assert len(result.top) == 4
        assert "potential" in result.rendered

    def test_fig8_spike(self):
        result = experiments.run_fig8(scale=SCALE,
                                      gc_threshold_bytes=24 * 1024)
        assert result.spike_cycle >= 1
        assert 0 < result.spike_fraction <= 1.0
        assert "spike" in result.render()

    def test_hybrid_ablation_rows(self):
        result = experiments.run_hybrid_ablation(scale=SCALE,
                                                 thresholds=(4, 16))
        labels = [label for label, _, _ in result.rows]
        assert labels[0] == "HashMap (original)"
        assert "SizeAdapting@16" in labels
        assert result.peak("ArrayMap (offline fix)") < result.peak(
            "HashMap (original)")

    def test_online_runner_rows(self):
        from repro.workloads import TvlaWorkload
        result = experiments.run_online(scale=SCALE,
                                        benchmarks=[TvlaWorkload])
        assert result.slowdown("tvla") > 1.0
        assert "online slowdown" in result.render()

    def test_paper_reference_values_present(self):
        assert experiments.PAPER_FIG6["tvla"] == pytest.approx(0.5395)
        assert experiments.PAPER_FIG7["pmd"] == pytest.approx(1.083)
        assert experiments.PAPER_ONLINE["pmd"] == 6.0
