"""Determinism contract: the experiment suite is byte-identical at any
scheduler parallelism (ISSUE 2 acceptance criterion)."""

import pytest

from repro.analysis import experiments
from repro.analysis.scheduler import Scheduler

SCALE = 0.05
RESOLUTION = 32768


@pytest.fixture(autouse=True)
def fresh_session_cache():
    experiments.reset_session_cache()
    yield
    experiments.reset_session_cache()


@pytest.fixture(scope="module")
def pool():
    with Scheduler(jobs=4) as scheduler:
        yield scheduler


class TestFig6Parallel:
    def test_rows_and_details_identical(self, pool):
        serial = experiments.run_fig6(scale=SCALE, resolution=RESOLUTION)
        experiments.reset_session_cache()
        parallel = experiments.run_fig6(scale=SCALE, resolution=RESOLUTION,
                                        scheduler=pool)
        assert parallel.rows == serial.rows
        assert parallel.details == serial.details
        assert parallel.render() == serial.render()


class TestFig7Parallel:
    def test_ticks_and_gc_counts_identical(self, pool):
        serial = experiments.run_fig7(scale=SCALE, resolution=RESOLUTION)
        experiments.reset_session_cache()
        parallel = experiments.run_fig7(scale=SCALE, resolution=RESOLUTION,
                                        scheduler=pool)
        assert parallel.rows == serial.rows
        assert parallel.gc_cycles == serial.gc_cycles
        assert parallel.render() == serial.render()


class TestSessionCacheInteraction:
    def test_fig7_after_fig6_reuses_profiles(self):
        """In one process, Fig. 7 re-profiles nothing Fig. 6 already
        profiled."""
        experiments.run_fig6(scale=SCALE, resolution=RESOLUTION)
        cache = experiments.get_session_cache()
        misses_after_fig6 = cache.misses
        experiments.run_fig7(scale=SCALE, resolution=RESOLUTION)
        assert cache.misses == misses_after_fig6
        assert cache.hits >= len(experiments.BENCHMARKS)

    def test_cached_rerun_is_identical(self):
        first = experiments.run_fig6(scale=SCALE, resolution=RESOLUTION)
        second = experiments.run_fig6(scale=SCALE, resolution=RESOLUTION)
        assert experiments.get_session_cache().hits > 0
        assert second.render() == first.render()
