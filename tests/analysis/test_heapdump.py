"""Plain heap snapshots vs the semantic profiler (the §2.1 argument)."""

import pytest

from repro.analysis.heapdump import heap_histogram, render_histogram
from repro.collections.wrappers import ChameleonMap
from repro.profiler.profiler import SemanticProfiler
from repro.runtime.context import ContextKey
from repro.runtime.vm import RuntimeEnvironment


@pytest.fixture
def populated_vm():
    vm = RuntimeEnvironment(gc_threshold_bytes=None,
                            profiler=SemanticProfiler())
    key = ContextKey.synthetic("cacheFactory", "main")
    for i in range(10):
        mapping = ChameleonMap(vm, context=key)
        mapping.pin()
        for k in range(4):
            mapping.put(k, k)
    vm.allocate("Garbage", 1024)  # unreachable
    return vm


class TestHistogram:
    def test_live_only_excludes_garbage(self, populated_vm):
        rows = heap_histogram(populated_vm, live_only=True)
        assert "Garbage" not in {row.type_name for row in rows}
        all_rows = heap_histogram(populated_vm, live_only=False)
        assert "Garbage" in {row.type_name for row in all_rows}

    def test_rows_sorted_by_bytes(self, populated_vm):
        rows = heap_histogram(populated_vm)
        sizes = [row.bytes for row in rows]
        assert sizes == sorted(sizes, reverse=True)

    def test_counts_are_exact(self, populated_vm):
        rows = {row.type_name: row for row in heap_histogram(populated_vm)}
        assert rows["HashMap$Entry"].count == 40  # 10 maps x 4 entries
        assert rows["HashMap$Entry"].bytes == 40 * 24

    def test_render(self, populated_vm):
        text = render_histogram(heap_histogram(populated_vm), limit=3)
        assert "HashMap$Entry" in text or "Object[]" in text
        assert "more types" in text


class TestWhySnapshotsAreNotEnough:
    """The section 2.1 / 4.3.2 contrast, made concrete."""

    def test_snapshot_has_no_semantic_attribution(self, populated_vm):
        """The histogram reports raw types: backing arrays and entries
        stand alone, unattributed to their ADT..."""
        types = {row.type_name for row in heap_histogram(populated_vm)}
        assert "Object[]" in types
        assert "HashMap$Entry" in types

    def test_semantic_gc_attributes_the_same_bytes(self, populated_vm):
        """... while the collection-aware GC folds them into the HashMap
        ADT and its allocation context."""
        stats = populated_vm.collect()
        assert "Object[]" not in stats.type_distribution
        assert "HashMap$Entry" not in stats.type_distribution
        assert stats.type_distribution["HashMap"] > 0
        # And it knows *where* they came from -- the context -- which no
        # snapshot can say.
        assert len(stats.per_context) == 1

    def test_snapshot_has_no_allocation_contexts(self, populated_vm):
        """HistogramRow carries type/count/bytes only: 'finding the
        program points that need to be modified requires significant
        effort' from a snapshot."""
        row = heap_histogram(populated_vm)[0]
        assert set(vars(row)) == {"type_name", "count", "bytes"}
