"""Minimal-heap binary search."""

import pytest

from repro.analysis.minheap import MinHeapResult, find_min_heap, measure_min_heap
from repro.core.chameleon import Chameleon
from repro.collections.wrappers import ChameleonList
from repro.workloads.base import Workload


class TestFindMinHeap:
    def test_exact_threshold_search(self):
        threshold = 77_000
        attempts = []

        def attempt(limit):
            attempts.append(limit)
            return limit >= threshold

        found, probes = find_min_heap(attempt, low=1024, high=1 << 20,
                                      resolution=1024)
        assert threshold <= found < threshold + 1024
        assert probes == len(attempts)

    def test_grows_upper_bracket(self):
        found, _ = find_min_heap(lambda limit: limit >= 10_000,
                                 low=16, high=32, resolution=16)
        assert 10_000 <= found < 10_016

    def test_resolution_controls_probe_count(self):
        def attempt(limit):
            return limit >= 50_000
        _, coarse = find_min_heap(attempt, low=1024, high=1 << 20,
                                  resolution=16_384)
        _, fine = find_min_heap(attempt, low=1024, high=1 << 20,
                                resolution=256)
        assert coarse < fine

    def test_invalid_bracket(self):
        with pytest.raises(ValueError):
            find_min_heap(lambda limit: True, low=100, high=100)

    def test_never_succeeding_run_raises(self):
        with pytest.raises(RuntimeError):
            find_min_heap(lambda limit: False, low=1, high=2,
                          resolution=1)


class TestLowerBracketVerification:
    """``low`` is probed, not assumed failing: a true minimum at or
    below the seed must still be found."""

    def test_finds_minimum_below_the_seed(self):
        threshold = 100
        attempts = []

        def attempt(limit):
            attempts.append(limit)
            return limit >= threshold

        found, probes = find_min_heap(attempt, low=1000, high=4000,
                                      resolution=8)
        assert threshold <= found < threshold + 8
        assert probes == len(attempts)

    def test_seed_equal_to_minimum(self):
        found, _ = find_min_heap(lambda limit: limit >= 1000,
                                 low=1000, high=4000, resolution=8)
        assert 1000 <= found < 1008

    def test_always_succeeding_attempt_bottoms_out(self):
        found, _ = find_min_heap(lambda limit: True, low=512, high=1024,
                                 resolution=64)
        assert found <= 64

    def test_failing_seed_skips_downward_probe(self):
        """When the doubling loop has already seen ``low`` fail, no
        downward probes are spent re-checking it."""
        attempts = []

        def attempt(limit):
            attempts.append(limit)
            return limit >= 100

        found, probes = find_min_heap(attempt, low=16, high=32,
                                      resolution=8)
        assert 100 <= found < 108
        assert probes == len(attempts)
        # Every probe below the first success came from the doubling
        # loop, none from the lower-bracket verification.
        assert min(attempts) == 32


class TestSpeculativeSearch:
    """The speculative driver must return byte-identical results to the
    serial plan at any width, including the below-seed regression case."""

    # (low, high, resolution, threshold) covering: plain bisection,
    # upper-bracket doubling, the true-minimum-below-seed regression
    # from the lower-bracket verification fix, seed == minimum, an
    # always-succeeding attempt, and a coarse resolution.
    GRID = [
        (1024, 1 << 20, 1024, 77_000),
        (16, 32, 16, 10_000),
        (1000, 4000, 8, 100),
        (1000, 4000, 8, 1000),
        (512, 1024, 64, 0),
        (1024, 1 << 20, 16_384, 50_000),
    ]

    @pytest.mark.parametrize("low,high,resolution,threshold", GRID)
    @pytest.mark.parametrize("width", [2, 3, 4, 8])
    def test_matches_serial_across_grid(self, low, high, resolution,
                                        threshold, width):
        def attempt(limit):
            return limit >= threshold

        def attempt_many(limits):
            return [attempt(limit) for limit in limits]

        serial = find_min_heap(attempt, low=low, high=high,
                               resolution=resolution)
        speculative = find_min_heap(attempt, low=low, high=high,
                                    resolution=resolution,
                                    attempt_many=attempt_many, width=width)
        assert speculative == serial

    def test_speculation_compresses_rounds(self):
        """Each round evaluates a batch, so the number of serial rounds
        drops well below the plan's probe count."""
        rounds = []

        def attempt_many(limits):
            rounds.append(list(limits))
            return [limit >= 77_000 for limit in limits]

        _, probes = find_min_heap(lambda limit: limit >= 77_000,
                                  low=1024, high=1 << 20, resolution=1024,
                                  attempt_many=attempt_many, width=4)
        assert len(rounds) < probes
        assert all(len(batch) <= 4 for batch in rounds)

    def test_never_succeeding_run_raises_speculatively(self):
        def attempt_many(limits):
            return [False for _ in limits]

        with pytest.raises(RuntimeError):
            find_min_heap(lambda limit: False, low=1, high=2, resolution=1,
                          attempt_many=attempt_many, width=4)

    def test_width_one_uses_the_serial_driver(self):
        def attempt_many(limits):  # pragma: no cover - must not be called
            raise AssertionError("width=1 must not batch")

        found, _ = find_min_heap(lambda limit: limit >= 10_000,
                                 low=16, high=32, resolution=16,
                                 attempt_many=attempt_many, width=1)
        assert 10_000 <= found < 10_016


class GrowingWorkload(Workload):
    name = "growing"

    def run(self, vm):
        lst = ChameleonList(vm, initial_capacity=64)
        lst.pin()
        for i in range(self.scaled(200)):
            lst.add(vm.allocate_data("Item", int_fields=4))


class TestMeasureMinHeap:
    def test_min_heap_brackets_peak_live(self):
        tool = Chameleon()
        result = measure_min_heap(tool, GrowingWorkload(), resolution=1024)
        assert isinstance(result, MinHeapResult)
        # The program cannot run below its live set, and the GC-overhead
        # guard keeps the answer within a small factor above it.
        assert result.min_heap_bytes >= result.unconstrained_peak * 0.9
        assert result.min_heap_bytes <= result.unconstrained_peak * 1.6
        assert result.probes > 0
        assert result.headroom >= 0.9

    def test_deterministic(self):
        tool = Chameleon()
        first = measure_min_heap(tool, GrowingWorkload(), resolution=2048)
        second = measure_min_heap(tool, GrowingWorkload(), resolution=2048)
        assert first.min_heap_bytes == second.min_heap_bytes

    def test_scheduler_path_identical_to_serial(self):
        """measure_min_heap with a pooled Scheduler returns the same
        measurement (bytes AND probe count) as the serial path."""
        from repro.analysis.scheduler import Scheduler

        tool = Chameleon()
        serial = measure_min_heap(tool, GrowingWorkload(), resolution=2048)
        with Scheduler(jobs=3) as scheduler:
            parallel = measure_min_heap(tool, GrowingWorkload(),
                                        resolution=2048,
                                        scheduler=scheduler)
        assert parallel == serial

    def test_policy_changes_the_answer(self):
        """A smaller-footprint configuration needs a smaller heap."""
        from repro.core.apply import ReplacementMap
        from repro.runtime.vm import ImplementationChoice

        class ManySmallMaps(Workload):
            name = "maps"

            def run(self, vm):
                from repro.collections.wrappers import ChameleonMap
                holder = vm.allocate_data("H", ref_fields=1)
                vm.add_root(holder)
                def site():
                    return ChameleonMap(vm, src_type="HashMap")
                self._keys = []
                for _ in range(self.scaled(80)):
                    mapping = site()
                    holder.add_ref(mapping.heap_obj.obj_id)
                    for k in range(4):
                        mapping.put(k, k)
                    self._keys.append(mapping)

        tool = Chameleon()
        workload = ManySmallMaps()
        session = tool.profile(workload)
        policy = tool.build_policy(session.suggestions)
        assert len(policy) >= 1
        base = measure_min_heap(tool, workload, resolution=1024)
        optimized = measure_min_heap(tool, workload, policy=policy,
                                     resolution=1024)
        assert optimized.min_heap_bytes < base.min_heap_bytes
