"""Wall-clock perf harness: suite output, schema validation, CLI."""

import copy
import json

import pytest

from repro.analysis import perf
from repro.cli import main


@pytest.fixture(scope="module")
def doc():
    """One tiny suite run shared by every inspection test."""
    return perf.run_suite(scale=0.05, repeats=1, workloads=("tvla",),
                          include_gc_heavy=False)


class TestMedianIndex:
    def test_single_repeat(self):
        assert perf.median_index([4.2]) == 0

    def test_odd_count_picks_the_middle(self):
        assert perf.median_index([3.0, 1.0, 2.0]) == 2

    def test_even_count_picks_the_lower_middle(self):
        # Lower middle, so the reported wall and phases always come from
        # one actual run rather than an average of two.
        assert perf.median_index([4.0, 1.0, 3.0, 2.0]) == 3

    def test_index_refers_to_the_unsorted_input(self):
        walls = [0.9, 0.1, 0.5, 0.7, 0.3]
        assert walls[perf.median_index(walls)] == 0.5


class TestRunSuite:
    def test_document_is_schema_valid(self, doc):
        perf.validate_document(doc)  # must not raise

    def test_capture_on_and_off_are_measured(self, doc):
        names = [record["name"] for record in doc["benchmarks"]]
        assert names == ["tvla_capture_on", "tvla_capture_off"]

    def test_records_carry_measurements(self, doc):
        for record in doc["benchmarks"]:
            assert record["wall_seconds"] > 0
            assert record["ticks"] > 0
            assert record["allocated_objects"] > 0
            assert set(perf.PHASES) <= set(record["phases"])
            assert record["wall_seconds"] == pytest.approx(
                sum(record["phases"].values()))

    def test_capture_off_skips_the_report_phase(self, doc):
        by_name = {record["name"]: record for record in doc["benchmarks"]}
        assert by_name["tvla_capture_off"]["phases"]["report"] == 0.0
        assert by_name["tvla_capture_on"]["phases"]["report"] > 0.0

    def test_gc_heavy_multiplies_cycles(self):
        stressed = perf.run_suite(scale=0.05, repeats=1,
                                  workloads=("tvla",),
                                  include_gc_heavy=True)
        by_name = {record["name"]: record
                   for record in stressed["benchmarks"]}
        assert by_name["gc_heavy"]["gc_cycles"] \
            > by_name["tvla_capture_off"]["gc_cycles"]
        mark_heavy = by_name["gc_mark_heavy"]
        assert mark_heavy["workload"] == "synthetic"
        assert mark_heavy["ticks"] > 0
        assert mark_heavy["wall_seconds"] > 0

    def test_gc_mark_heavy_is_deterministic_across_cores(self, monkeypatch):
        """Pure tick counts: the microbenchmark measures the same
        simulated work whichever mark/account core runs it."""
        ticks = set()
        for core in ("reference", "fast", "vector"):
            monkeypatch.setenv("REPRO_GC_CORE", core)
            record = perf._bench_gc_mark_heavy(scale=0.05, seed=2009,
                                               repeats=1)
            ticks.add(record.ticks)
        assert len(ticks) == 1, f"core-dependent ticks: {ticks}"

    def test_render_summary_names_every_benchmark(self, doc):
        text = perf.render_summary(doc)
        for record in doc["benchmarks"]:
            assert record["name"] in text


class TestMedianOfRepeats:
    """Schema v4: every record carries its per-repeat walls and reports
    the median run (satellite: gate comparisons stop being
    single-sample)."""

    def test_records_carry_repeat_walls(self, doc):
        for record in doc["benchmarks"]:
            assert len(record["repeat_walls"]) == record["repeats"]
            assert record["wall_seconds"] in record["repeat_walls"]

    def test_reported_wall_is_the_median_repeat(self):
        multi = perf.run_suite(scale=0.05, repeats=3,
                               workloads=("tvla",),
                               include_gc_heavy=False,
                               include_vm_cores=False)
        for record in multi["benchmarks"]:
            walls = record["repeat_walls"]
            assert len(walls) == 3
            assert record["wall_seconds"] \
                == walls[perf.median_index(walls)]


class TestOpDispatchHeavy:
    def test_record_shape(self):
        record = perf._bench_op_dispatch_heavy(scale=0.02, repeats=1)
        assert record.name == "op_dispatch_heavy"
        assert record.workload == "synthetic"
        assert record.ticks > 0
        assert record.wall_seconds > 0
        assert record.allocated_objects > 0

    def test_deterministic_across_vm_cores(self):
        """Pure tick counts: the microbenchmark measures the same
        simulated work whichever op-pipeline core runs it."""
        ticks = {perf._bench_op_dispatch_heavy(scale=0.02, repeats=1,
                                               vm_core=core).ticks
                 for core in ("reference", "fast")}
        assert len(ticks) == 1, f"core-dependent ticks: {ticks}"

    def test_included_in_the_gc_heavy_suite(self):
        stressed = perf.run_suite(scale=0.05, repeats=1,
                                  workloads=("tvla",),
                                  include_gc_heavy=True,
                                  include_vm_cores=False)
        names = [r["name"] for r in stressed["benchmarks"]]
        assert "op_dispatch_heavy" in names


class TestVmCoresSection:
    """The schema-v4 ``vm_cores`` section: reference-vs-fast op-pipeline
    walls with the tick-identity contract asserted on every perf run."""

    @pytest.fixture(scope="class")
    def section(self):
        return perf.run_vm_cores_section(scale=0.02, repeats=1)

    def test_measures_both_benchmarks(self, section):
        assert set(section["benchmarks"]) \
            == {"pmd_capture_on", "op_dispatch_heavy"}
        for entry in section["benchmarks"].values():
            assert entry["reference_wall"] > 0
            assert entry["fast_wall"] > 0
            assert entry["speedup"] > 0

    def test_ticks_are_identical(self, section):
        """The byte-identity contract: a divergence here is a
        correctness bug, not a perf result."""
        for name, entry in section["benchmarks"].items():
            assert entry["ticks_identical"] is True, (name, entry)

    def test_records_the_runner_cpu_count(self, section):
        assert section["cpu_count"] >= 1

    def test_valid_inside_a_document(self, doc, section):
        extended = copy.deepcopy(doc)
        extended["vm_cores"] = section
        perf.validate_document(extended)  # must not raise
        assert "vm_cores pmd_capture_on" \
            in perf.render_summary(extended)

    def test_run_suite_attaches_the_section(self, doc):
        # The shared fixture runs with the default include_vm_cores.
        assert "vm_cores" in doc
        perf.validate_document(doc)


class TestVmCoresValidation:
    def _doc_with_section(self, doc, **overrides):
        extended = copy.deepcopy(doc)
        extended["vm_cores"] = {
            "scale": 0.02, "seed": 2009, "repeats": 1, "cpu_count": 4,
            "benchmarks": {
                "pmd_capture_on": {
                    "reference_wall": 1.0, "fast_wall": 0.5,
                    "speedup": 2.0, "ticks": 1000,
                    "ticks_identical": True,
                },
            },
        }
        extended["vm_cores"].update(overrides)
        return extended

    def test_well_formed_section_is_valid(self, doc):
        perf.validate_document(self._doc_with_section(doc))

    def test_v3_document_without_section_stays_valid(self, doc):
        v3 = copy.deepcopy(doc)
        v3.pop("vm_cores", None)
        v3["schema_version"] = 3
        perf.validate_document(v3)

    def test_rejects_non_object_section(self, doc):
        broken = copy.deepcopy(doc)
        broken["vm_cores"] = [1, 2]
        with pytest.raises(ValueError, match="vm_cores section is not"):
            perf.validate_document(broken)

    def test_rejects_missing_section_field(self, doc):
        broken = self._doc_with_section(doc)
        del broken["vm_cores"]["cpu_count"]
        with pytest.raises(ValueError, match="vm_cores: missing field"):
            perf.validate_document(broken)

    def test_rejects_wrong_section_field_type(self, doc):
        broken = self._doc_with_section(doc, cpu_count="four")
        with pytest.raises(ValueError,
                           match="vm_cores: field 'cpu_count'"):
            perf.validate_document(broken)

    def test_rejects_missing_benchmark_field(self, doc):
        broken = self._doc_with_section(doc)
        del broken["vm_cores"]["benchmarks"]["pmd_capture_on"]["speedup"]
        with pytest.raises(ValueError,
                           match="vm_cores benchmark 'pmd_capture_on'"):
            perf.validate_document(broken)

    def test_rejects_non_object_benchmark(self, doc):
        broken = self._doc_with_section(doc)
        broken["vm_cores"]["benchmarks"]["pmd_capture_on"] = 7
        with pytest.raises(ValueError, match="is not *an object"):
            perf.validate_document(broken)

    def test_rejects_invalid_repeat_walls(self, doc):
        broken = copy.deepcopy(doc)
        broken["benchmarks"][0]["repeat_walls"] = [-0.1]
        with pytest.raises(ValueError, match="repeat_walls"):
            perf.validate_document(broken)

    def test_rejects_non_list_repeat_walls(self, doc):
        broken = copy.deepcopy(doc)
        broken["benchmarks"][0]["repeat_walls"] = 0.5
        with pytest.raises(ValueError, match="repeat_walls"):
            perf.validate_document(broken)

    def test_pre_v4_record_without_repeat_walls_stays_valid(self, doc):
        older = copy.deepcopy(doc)
        for record in older["benchmarks"]:
            record.pop("repeat_walls", None)
        older["schema_version"] = 3
        older.pop("vm_cores", None)
        perf.validate_document(older)


class TestValidateDocument:
    def _assert_invalid(self, broken, fragment):
        with pytest.raises(ValueError, match=fragment):
            perf.validate_document(broken)

    def test_rejects_non_object(self):
        self._assert_invalid([], "JSON object")

    def test_rejects_missing_top_level_field(self, doc):
        broken = copy.deepcopy(doc)
        del broken["seed"]
        self._assert_invalid(broken, "missing top-level field 'seed'")

    def test_rejects_wrong_field_type(self, doc):
        broken = copy.deepcopy(doc)
        broken["scale"] = "0.05"
        self._assert_invalid(broken, "field 'scale' has type")

    def test_rejects_bool_masquerading_as_int(self, doc):
        broken = copy.deepcopy(doc)
        broken["benchmarks"][0]["ticks"] = True
        self._assert_invalid(broken, "'ticks'")

    def test_rejects_negative_wall_seconds(self, doc):
        broken = copy.deepcopy(doc)
        broken["benchmarks"][0]["wall_seconds"] = -0.5
        self._assert_invalid(broken, "negative wall_seconds")

    def test_rejects_negative_phase(self, doc):
        broken = copy.deepcopy(doc)
        broken["benchmarks"][0]["phases"]["run"] = -1.0
        self._assert_invalid(broken, "phase 'run'")

    def test_rejects_duplicate_benchmark_names(self, doc):
        broken = copy.deepcopy(doc)
        broken["benchmarks"].append(
            copy.deepcopy(broken["benchmarks"][0]))
        self._assert_invalid(broken, "duplicate benchmark name")

    def test_rejects_empty_benchmark_list(self, doc):
        broken = copy.deepcopy(doc)
        broken["benchmarks"] = []
        self._assert_invalid(broken, "empty")

    def test_rejects_newer_schema_version(self, doc):
        broken = copy.deepcopy(doc)
        broken["schema_version"] = perf.SCHEMA_VERSION + 1
        self._assert_invalid(broken, "newer")

    def test_rejects_missing_record_field(self, doc):
        broken = copy.deepcopy(doc)
        del broken["benchmarks"][0]["gc_cycles"]
        self._assert_invalid(broken, "missing field 'gc_cycles'")


class TestSuiteSection:
    """The schema-v2 ``suite`` section: serial-vs-parallel trajectory."""

    @pytest.fixture(scope="class")
    def suite(self):
        return perf.run_suite_section(scale=0.05, resolution=32768, jobs=2)

    def test_measures_both_paths(self, suite):
        assert suite["serial_seconds"] > 0
        assert suite["parallel_seconds"] > 0
        assert suite["speedup"] > 0
        assert suite["jobs"] == 2

    def test_results_are_identical(self, suite):
        """The determinism contract, asserted on every perf run."""
        assert suite["identical"] is True

    def test_serial_pass_exercises_the_session_cache(self, suite):
        # Fig. 7 re-profiles nothing Fig. 6 already profiled.
        assert suite["cache_hits"] >= 6
        assert suite["cache_misses"] >= 6

    def test_valid_inside_a_document(self, doc, suite):
        extended = copy.deepcopy(doc)
        extended["suite"] = suite
        perf.validate_document(extended)  # must not raise
        assert "suite (fig6+fig7" in perf.render_summary(extended)

    def test_overhead_breakdown_is_recorded(self, suite):
        """Schema v3: the parallel pass reports where non-worker wall
        time went (spawn / transfer / merge)."""
        overhead = suite["overhead"]
        assert overhead["jobs_executed"] > 0
        assert overhead["spawn_seconds"] > 0.0
        assert overhead["worker_seconds"] > 0.0
        assert overhead["transfer_seconds"] >= 0.0
        assert overhead["merge_seconds"] >= 0.0

    def test_overhead_renders_in_the_summary(self, doc, suite):
        extended = copy.deepcopy(doc)
        extended["suite"] = suite
        assert "pool overhead" in perf.render_summary(extended)


class TestSuiteSectionValidation:
    def _doc_with_suite(self, doc, **overrides):
        extended = copy.deepcopy(doc)
        extended["suite"] = {
            "scale": 0.05, "resolution": 32768, "jobs": 2,
            "serial_seconds": 1.0, "parallel_seconds": 0.5,
            "speedup": 2.0, "cache_hits": 6, "cache_misses": 6,
            "identical": True,
        }
        extended["suite"].update(overrides)
        return extended

    def test_well_formed_suite_is_valid(self, doc):
        perf.validate_document(self._doc_with_suite(doc))

    def test_v1_document_without_suite_stays_valid(self, doc):
        """Backward compat: pre-suite (v1) documents still validate."""
        v1 = copy.deepcopy(doc)
        v1.pop("suite", None)
        v1["schema_version"] = 1
        perf.validate_document(v1)

    def test_rejects_non_object_suite(self, doc):
        broken = copy.deepcopy(doc)
        broken["suite"] = [1, 2]
        with pytest.raises(ValueError, match="suite section is not"):
            perf.validate_document(broken)

    def test_rejects_missing_suite_field(self, doc):
        broken = self._doc_with_suite(doc)
        del broken["suite"]["speedup"]
        with pytest.raises(ValueError, match="suite: missing field"):
            perf.validate_document(broken)

    def test_rejects_wrong_suite_field_type(self, doc):
        broken = self._doc_with_suite(doc, jobs="two")
        with pytest.raises(ValueError, match="suite: field 'jobs'"):
            perf.validate_document(broken)

    def test_rejects_bool_suite_counter(self, doc):
        broken = self._doc_with_suite(doc, cache_hits=True)
        with pytest.raises(ValueError, match="suite: field 'cache_hits'"):
            perf.validate_document(broken)

    def _overhead(self, **overrides):
        overhead = {"jobs_executed": 24, "spawn_seconds": 0.02,
                    "worker_seconds": 5.0, "transfer_seconds": 0.3,
                    "merge_seconds": 0.01}
        overhead.update(overrides)
        return overhead

    def test_v2_suite_without_overhead_stays_valid(self, doc):
        """Backward compat: the overhead breakdown is v3-optional."""
        perf.validate_document(self._doc_with_suite(doc))

    def test_well_formed_overhead_is_valid(self, doc):
        perf.validate_document(
            self._doc_with_suite(doc, overhead=self._overhead()))

    def test_rejects_non_object_overhead(self, doc):
        broken = self._doc_with_suite(doc, overhead=[1])
        with pytest.raises(ValueError, match="suite.overhead is not"):
            perf.validate_document(broken)

    def test_rejects_missing_overhead_field(self, doc):
        overhead = self._overhead()
        del overhead["transfer_seconds"]
        broken = self._doc_with_suite(doc, overhead=overhead)
        with pytest.raises(ValueError,
                           match="suite.overhead: missing field"):
            perf.validate_document(broken)

    def test_rejects_negative_overhead_field(self, doc):
        broken = self._doc_with_suite(
            doc, overhead=self._overhead(spawn_seconds=-0.1))
        with pytest.raises(ValueError, match="'spawn_seconds' is "
                                             "negative"):
            perf.validate_document(broken)

    def test_rejects_bool_overhead_counter(self, doc):
        broken = self._doc_with_suite(
            doc, overhead=self._overhead(jobs_executed=True))
        with pytest.raises(ValueError,
                           match="suite.overhead: field 'jobs_executed'"):
            perf.validate_document(broken)


class TestTickDivergences:
    def _record(self, name, ticks):
        return {"name": name, "ticks": ticks}

    def test_empty_when_ticks_match(self):
        old = {"benchmarks": [self._record("a", 100)]}
        new = {"benchmarks": [self._record("a", 100)]}
        assert perf.tick_divergences(old, new) == []

    def test_reports_name_and_both_values(self):
        old = {"benchmarks": [self._record("a", 100),
                              self._record("b", 7)]}
        new = {"benchmarks": [self._record("a", 101),
                              self._record("b", 7)]}
        assert perf.tick_divergences(old, new) == [("a", 100, 101)]

    def test_unmatched_benchmarks_are_not_divergences(self):
        old = {"benchmarks": [self._record("a", 100)]}
        new = {"benchmarks": [self._record("b", 100)]}
        assert perf.tick_divergences(old, new) == []


class TestCompare:
    def _record(self, name, wall, ticks):
        return {"name": name, "workload": "tvla", "capture": False,
                "repeats": 1, "wall_seconds": wall, "phases": {},
                "ticks": ticks, "gc_cycles": 0, "allocated_objects": 1}

    def test_ratio_for_matching_ticks(self):
        old = {"benchmarks": [self._record("a", 2.0, 100)]}
        new = {"benchmarks": [self._record("a", 1.0, 100)]}
        assert perf.compare(old, new) == {"a": 0.5}

    def test_nan_when_ticks_diverge(self):
        import math

        old = {"benchmarks": [self._record("a", 2.0, 100)]}
        new = {"benchmarks": [self._record("a", 1.0, 101)]}
        assert math.isnan(perf.compare(old, new)["a"])

    def test_unmatched_benchmarks_are_skipped(self):
        old = {"benchmarks": [self._record("a", 2.0, 100)]}
        new = {"benchmarks": [self._record("b", 1.0, 100)]}
        assert perf.compare(old, new) == {}


class TestPersistence:
    def test_write_load_roundtrip(self, doc, tmp_path):
        path = tmp_path / "BENCH_chameleon.json"
        perf.write_document(doc, str(path))
        assert perf.load_document(str(path)) == json.loads(
            path.read_text())

    def test_write_refuses_invalid_document(self, doc, tmp_path):
        broken = copy.deepcopy(doc)
        broken["benchmarks"] = []
        path = tmp_path / "broken.json"
        with pytest.raises(ValueError):
            perf.write_document(broken, str(path))
        assert not path.exists()

    def test_load_refuses_invalid_document(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError):
            perf.load_document(str(path))


class TestCli:
    def test_perf_writes_and_checks(self, tmp_path, capsys):
        path = tmp_path / "BENCH_chameleon.json"
        assert main(["perf", "--scale", "0.05", "--repeats", "1",
                     "--no-gc-heavy", "--output", str(path),
                     "--runs-root", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "tvla_capture_on" in out
        assert "indexed run" in out
        assert path.exists()
        assert main(["perf", "--check", str(path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_perf_check_fails_on_invalid_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{}")
        with pytest.raises(SystemExit) as excinfo:
            main(["perf", "--check", str(path)])
        assert "invalid BENCH document" in str(excinfo.value)

    def test_perf_check_fails_on_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["perf", "--check", str(tmp_path / "absent.json")])

    def test_perf_baseline_comparison(self, doc, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        perf.write_document(doc, str(baseline))
        output = tmp_path / "new.json"
        assert main(["perf", "--scale", "0.05", "--repeats", "1",
                     "--no-gc-heavy", "--output", str(output),
                     "--baseline", str(baseline),
                     "--runs-root", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "vs baseline" in out

    def test_perf_baseline_refuses_diverged_ticks(self, doc, tmp_path):
        """A tick mismatch makes the wall-clock comparison meaningless:
        the CLI must refuse, naming the benchmark and both tick values,
        and exit non-zero."""
        doctored = copy.deepcopy(doc)
        original_ticks = doctored["benchmarks"][0]["ticks"]
        doctored["benchmarks"][0]["ticks"] = original_ticks + 1
        baseline = tmp_path / "baseline.json"
        perf.write_document(doctored, str(baseline))
        with pytest.raises(SystemExit) as excinfo:
            main(["perf", "--scale", "0.05", "--repeats", "1",
                  "--no-gc-heavy",
                  "--output", str(tmp_path / "new.json"),
                  "--baseline", str(baseline),
                  "--runs-root", str(tmp_path / "runs")])
        message = str(excinfo.value)
        assert excinfo.value.code != 0
        assert doctored["benchmarks"][0]["name"] in message
        assert str(original_ticks + 1) in message   # baseline's ticks
        assert str(original_ticks) in message       # current run's ticks
        assert "cannot compare" in message

    def test_perf_suite_flag_records_the_section(self, tmp_path, capsys):
        path = tmp_path / "BENCH_chameleon.json"
        assert main(["perf", "--scale", "0.05", "--repeats", "1",
                     "--no-gc-heavy", "--output", str(path),
                     "--suite", "--jobs", "2", "--suite-scale", "0.05",
                     "--suite-resolution", "32768",
                     "--runs-root", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "suite (fig6+fig7" in out
        written = json.loads(path.read_text())
        assert written["schema_version"] == perf.SCHEMA_VERSION
        assert written["suite"]["jobs"] == 2
        assert written["suite"]["identical"] is True
