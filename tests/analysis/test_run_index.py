"""Cross-run experiment index: manifests, runs.sqlite, gating, store."""

import copy
import json
import os

import pytest

from repro.analysis import index as run_index
from repro.analysis import perf
from repro.analysis.index import (GateDivergenceError, RunDirectory,
                                  RunIndex, SessionStore, gate_document)
from repro.cli import main


def make_manifest(run_id, started_at=1000.0, **overrides):
    """A minimal valid manifest for direct index tests."""
    manifest = {
        "schema": run_index.MANIFEST_SCHEMA,
        "schema_version": run_index.MANIFEST_SCHEMA_VERSION,
        "run_id": run_id,
        "kind": "perf",
        "started_at": started_at,
        "wall_seconds": 1.0,
        "python": "3.11.0",
        "pythonhashseed": "2009",
        "git_rev": None,
        "config_fingerprint": "fp",
        "command": ["perf"],
        "params": {},
        "artifacts": [],
        "results": {},
    }
    manifest.update(overrides)
    return manifest


def make_record(name="bench", wall=1.0, ticks=100, **overrides):
    record = {"name": name, "workload": "tvla", "capture": True,
              "wall_seconds": wall, "phases": {"run": wall * 0.5},
              "ticks": ticks, "gc_cycles": 2, "allocated_objects": 10}
    record.update(overrides)
    return record


class TestManifestValidation:
    def test_valid_manifest_passes(self):
        run_index.validate_manifest(make_manifest("r1"))

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            run_index.validate_manifest([])

    def test_rejects_missing_field(self):
        manifest = make_manifest("r1")
        del manifest["config_fingerprint"]
        with pytest.raises(ValueError, match="config_fingerprint"):
            run_index.validate_manifest(manifest)

    def test_rejects_wrong_field_type(self):
        manifest = make_manifest("r1", params=[1, 2])
        with pytest.raises(ValueError, match="'params' has type"):
            run_index.validate_manifest(manifest)

    def test_rejects_missing_git_rev(self):
        manifest = make_manifest("r1")
        del manifest["git_rev"]
        with pytest.raises(ValueError, match="git_rev"):
            run_index.validate_manifest(manifest)

    def test_rejects_newer_schema_version(self):
        manifest = make_manifest(
            "r1",
            schema_version=run_index.MANIFEST_SCHEMA_VERSION + 1)
        with pytest.raises(ValueError, match="newer"):
            run_index.validate_manifest(manifest)


class TestRunDirectory:
    def test_create_finalize_roundtrip(self, tmp_path):
        run = RunDirectory.create(
            str(tmp_path), "perf", command=["perf", "--scale", "0.05"],
            params={"scale": 0.05}, config_fingerprint="fp")
        run.add_artifact("summary.txt", "hello\n")
        path = run.finalize(results={"n": 1}, wall_seconds=2.5)
        assert os.path.exists(path)
        manifest = RunDirectory.open(str(tmp_path), run.run_id).manifest
        assert manifest["kind"] == "perf"
        assert manifest["wall_seconds"] == 2.5
        assert manifest["results"] == {"n": 1}
        assert manifest["artifacts"] == ["summary.txt"]
        assert manifest["pythonhashseed"] == \
            run_index.interpreter_hashseed()
        with open(run.artifact_path("summary.txt")) as handle:
            assert handle.read() == "hello\n"

    def test_run_id_embeds_the_kind(self, tmp_path):
        run = RunDirectory.create(str(tmp_path), "experiment")
        assert "-experiment-" in run.run_id

    def test_no_manifest_until_finalize(self, tmp_path):
        """A crashed run leaves artifacts but no manifest, so indexing
        never sees half-finished invocations."""
        run = RunDirectory.create(str(tmp_path), "perf")
        run.add_artifact("partial.txt", "…")
        assert not os.path.exists(run.manifest_path())

    def test_finalize_measures_wall_clock_when_not_given(self, tmp_path):
        run = RunDirectory.create(str(tmp_path), "perf")
        run.finalize(results={})
        assert run.manifest["wall_seconds"] >= 0.0


class TestAtomicWriteText:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "out.txt"
        run_index.atomic_write_text(str(path), "one")
        run_index.atomic_write_text(str(path), "two")
        assert path.read_text() == "two"
        assert list(tmp_path.iterdir()) == [path]  # no temp leftovers

    def test_failed_write_leaves_original_and_no_temp(self, tmp_path,
                                                     monkeypatch):
        path = tmp_path / "out.txt"
        run_index.atomic_write_text(str(path), "original")

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(run_index.os, "replace", boom)
        with pytest.raises(OSError):
            run_index.atomic_write_text(str(path), "clobbered")
        monkeypatch.undo()
        assert path.read_text() == "original"
        assert list(tmp_path.iterdir()) == [path]


class TestRunIndex:
    def test_record_run_is_an_upsert(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            index.record_run(make_manifest("r1", wall_seconds=1.0))
            index.record_run(make_manifest("r1", wall_seconds=9.0))
            rows = index.runs()
            assert len(rows) == 1
            assert rows[0]["wall_seconds"] == 9.0

    def test_record_benchmark_is_an_upsert(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            index.record_run(make_manifest("r1"))
            index.record_benchmark("r1", make_record(wall=1.0))
            index.record_benchmark("r1", make_record(wall=2.0))
            rows = index.history("bench")
            assert len(rows) == 1
            assert rows[0]["wall_seconds"] == 2.0
            assert rows[0]["run_seconds"] == 1.0  # phases["run"]

    def test_history_is_newest_first_and_joined(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            for i in (1, 2, 3):
                index.record_run(make_manifest(f"r{i}",
                                               started_at=1000.0 + i))
                index.record_benchmark(f"r{i}", make_record(wall=float(i)))
            rows = index.history("bench")
            assert [row["run_id"] for row in rows] == ["r3", "r2", "r1"]
            assert rows[0]["pythonhashseed"] == "2009"
            assert index.history("bench", last=2)[0]["run_id"] == "r3"
            excluded = index.history("bench", exclude_run="r3")
            assert [row["run_id"] for row in excluded] == ["r2", "r1"]

    def test_benchmark_names_are_distinct_and_sorted(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            index.record_run(make_manifest("r1"))
            index.record_benchmark("r1", make_record(name="zeta"))
            index.record_benchmark("r1", make_record(name="alpha"))
            index.record_run(make_manifest("r2", started_at=1001.0))
            index.record_benchmark("r2", make_record(name="alpha"))
            assert index.benchmark_names() == ["alpha", "zeta"]

    def test_trend_with_no_rows_is_none(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            assert index.trend("absent") is None

    def test_trend_with_one_row_has_no_delta(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            index.record_run(make_manifest("r1"))
            index.record_benchmark("r1", make_record(wall=1.0))
            trend = index.trend("bench")
            assert trend["latest_wall_seconds"] == 1.0
            assert trend["delta"] is None
            assert trend["median_wall_seconds"] is None

    def test_trend_latest_vs_median_of_preceding(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            for i, wall in enumerate([1.0, 2.0, 3.0, 3.0]):
                index.record_run(make_manifest(f"r{i}",
                                               started_at=1000.0 + i))
                index.record_benchmark(f"r{i}", make_record(wall=wall))
            trend = index.trend("bench", window=3)
            # latest 3.0 vs median(3.0, 2.0, 1.0) = 2.0 -> +50%
            assert trend["latest_wall_seconds"] == 3.0
            assert trend["median_wall_seconds"] == 2.0
            assert trend["delta"] == pytest.approx(0.5)
            assert trend["runs"] == 4

    def test_refuses_newer_index_schema(self, tmp_path):
        import sqlite3

        path = tmp_path / run_index.INDEX_NAME
        conn = sqlite3.connect(str(path))
        conn.execute(f"PRAGMA user_version = "
                     f"{run_index.INDEX_SCHEMA_VERSION + 1}")
        conn.close()
        with pytest.raises(ValueError, match="newer"):
            RunIndex(str(path))


class TestGateDocument:
    def _doc(self, *records):
        return {"benchmarks": list(records)}

    def _seed(self, index, walls, ticks=100, name="bench"):
        for i, wall in enumerate(walls):
            index.record_run(make_manifest(f"seed{name}{i}",
                                           started_at=1000.0 + i))
            index.record_benchmark(
                f"seed{name}{i}",
                make_record(name=name, wall=wall, ticks=ticks))

    def test_fresh_index_skips_every_benchmark(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            report = gate_document(index, self._doc(make_record()))
        assert report.ok
        assert report.rows[0].status == "no-history"
        assert "no indexed history" in report.render()

    def test_ok_within_threshold(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            self._seed(index, [1.0, 1.0, 1.0])
            report = gate_document(index, self._doc(make_record(wall=1.2)))
        assert report.ok
        assert report.rows[0].status == "ok"
        assert report.rows[0].ratio == pytest.approx(1.2)
        assert "gate: ok" in report.render()

    def test_regression_past_threshold(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            self._seed(index, [1.0, 1.0, 1.0])
            report = gate_document(index, self._doc(make_record(wall=1.5)))
        assert not report.ok
        assert report.rows[0].status == "regression"
        rendered = report.render()
        assert "REGRESSION" in rendered
        assert "1 regression(s)" in rendered

    def test_median_is_robust_to_one_outlier(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            self._seed(index, [1.0, 1.0, 100.0])
            report = gate_document(index, self._doc(make_record(wall=1.2)))
        assert report.ok  # median 1.0, not mean ~34

    def test_exclude_run_skips_the_current_row(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            self._seed(index, [1.0])
            # The gated invocation's own row is already indexed…
            index.record_run(make_manifest("current", started_at=2000.0))
            index.record_benchmark("current", make_record(wall=5.0))
            # …and must not dilute the reference it is gated against.
            report = gate_document(index, self._doc(make_record(wall=5.0)),
                                   exclude_run="current")
        assert not report.ok
        assert report.rows[0].reference_wall == 1.0

    def test_refuses_tick_diverged_history(self, tmp_path):
        with RunIndex.at_root(str(tmp_path)) as index:
            self._seed(index, [1.0], ticks=101)
            with pytest.raises(GateDivergenceError) as excinfo:
                gate_document(index,
                              self._doc(make_record(wall=1.0, ticks=100)))
        message = str(excinfo.value)
        assert "'bench'" in message
        assert "101" in message      # indexed ticks
        assert "100" in message      # current ticks
        assert "different simulated work" in message

    def test_untracked_tick_rows_do_not_diverge(self, tmp_path):
        """Rows with ticks=NULL (experiment wall clocks) never refuse."""
        with RunIndex.at_root(str(tmp_path)) as index:
            index.record_run(make_manifest("r1"))
            index.record_benchmark(
                "r1", {"name": "bench", "wall_seconds": 1.0})
            report = gate_document(index, self._doc(make_record(wall=1.0)))
        assert report.ok


class FakeCache:
    """items()/merge() duck type of ``SessionCache`` for store tests."""

    def __init__(self, entries=None):
        self._entries = dict(entries or {})

    def items(self):
        return list(self._entries.items())

    def merge(self, entries):
        added = 0
        for key, session in entries.items():
            if key not in self._entries:
                self._entries[key] = session
                added += 1
        return added


class TestSessionStore:
    KEY = ("Workload", 2009, 0.1, False, "fp")

    def test_digest_is_stable(self):
        assert SessionStore.digest(self.KEY) == \
            SessionStore.digest(("Workload", 2009, 0.1, False, "fp"))
        assert SessionStore.digest(self.KEY) != \
            SessionStore.digest(self.KEY + ("x",))

    def test_put_get_roundtrip(self, tmp_path):
        store = SessionStore(str(tmp_path))
        assert store.put(self.KEY, {"session": 1}) is True
        assert store.put(self.KEY, {"session": 1}) is False  # idempotent
        assert len(store) == 1
        assert store.get(self.KEY) == {"session": 1}
        assert store.get(("other",)) is None

    def test_corrupt_entry_warns_and_is_skipped(self, tmp_path):
        store = SessionStore(str(tmp_path))
        store.put(self.KEY, "good")
        store.put(("other",), "alsogood")
        with open(store.path_for(self.KEY), "wb") as handle:
            handle.write(b"\x80\x04 truncated garbage")
        with pytest.warns(RuntimeWarning, match="corrupt or truncated"):
            assert store.get(self.KEY) is None
        with pytest.warns(RuntimeWarning, match="corrupt or truncated"):
            assert store.sessions() == ["alsogood"]

    def test_save_and_load_cache(self, tmp_path):
        store = SessionStore(str(tmp_path))
        source = FakeCache({("a",): 1, ("b",): 2})
        assert store.save_cache(source) == 2
        assert store.save_cache(source) == 0   # nothing new
        target = FakeCache({("a",): 1})
        assert store.load_cache(target) == 1   # only ("b",) is new
        assert target._entries == {("a",): 1, ("b",): 2}

    def test_failed_put_leaves_no_temp_files(self, tmp_path, monkeypatch):
        store = SessionStore(str(tmp_path))

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(run_index.os, "replace", boom)
        with pytest.raises(OSError):
            store.put(self.KEY, "session")
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []

    def test_lint_drift_loader_reads_a_store(self, tmp_path):
        from repro.lint.drift import load_sessions

        store = SessionStore(str(tmp_path))
        store.put(("a",), "session-a")
        assert load_sessions(str(tmp_path)) == ["session-a"]


@pytest.fixture(scope="module")
def bench_doc():
    """One tiny suite document for CLI-level ingest/gate tests."""
    return perf.run_suite(scale=0.05, repeats=1, workloads=("tvla",),
                          include_gc_heavy=False)


class TestCliHistoryAndGate:
    def _write(self, doc, path):
        perf.write_document(doc, str(path))
        return str(path)

    def test_history_errors_without_an_index(self, tmp_path):
        with pytest.raises(SystemExit, match="no index"):
            main(["history", "--runs-root", str(tmp_path / "empty")])

    def test_ingest_then_trends_and_series(self, bench_doc, tmp_path,
                                           capsys):
        root = tmp_path / "runs"
        doc_path = self._write(bench_doc, tmp_path / "BENCH.json")
        assert main(["history", "--ingest", doc_path,
                     "--runs-root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "ingested" in out
        assert "2 benchmark row(s)" in out
        assert main(["history", "--runs-root", str(root)]) == 0
        trends = capsys.readouterr().out
        assert "tvla_capture_on" in trends
        assert "tvla_capture_off" in trends
        assert "1 indexed run(s) (1 perf)" in trends
        assert main(["history", "tvla_capture_on",
                     "--runs-root", str(root)]) == 0
        series = capsys.readouterr().out
        assert "1 indexed run(s), newest first" in series
        assert "-perf-" in series  # run id embeds the kind

    def test_perf_run_writes_manifest_and_rows(self, tmp_path, capsys):
        from repro.analysis.index import MANIFEST_NAME

        root = tmp_path / "runs"
        assert main(["perf", "--scale", "0.05", "--repeats", "1",
                     "--no-gc-heavy",
                     "--output", str(tmp_path / "BENCH.json"),
                     "--runs-root", str(root)]) == 0
        capsys.readouterr()
        manifests = list(root.glob(f"*/{MANIFEST_NAME}"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text())
        run_index.validate_manifest(manifest)
        assert manifest["kind"] == "perf"
        assert manifest["config_fingerprint"]
        assert "BENCH_chameleon.json" in manifest["artifacts"]
        with RunIndex.at_root(str(root)) as index:
            assert len(index.runs(kind="perf")) == 1
            assert "tvla_capture_on" in index.benchmark_names()

    def test_gate_fails_on_injected_slowdown(self, bench_doc, tmp_path,
                                             capsys):
        """History seeded with a 100x-faster doctored doc makes the real
        run look like a regression: the gate must exit non-zero."""
        root = tmp_path / "runs"
        fast = copy.deepcopy(bench_doc)
        for record in fast["benchmarks"]:
            record["wall_seconds"] /= 100.0
            record["phases"] = {phase: seconds / 100.0
                                for phase, seconds in
                                record["phases"].items()}
        assert main(["history", "--ingest",
                     self._write(fast, tmp_path / "fast.json"),
                     "--runs-root", str(root)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["perf", "--scale", "0.05", "--repeats", "1",
                  "--no-gc-heavy",
                  "--output", str(tmp_path / "BENCH.json"),
                  "--gate", "--runs-root", str(root)])
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "regression(s)" in out

    def test_gate_passes_against_honest_history(self, bench_doc, tmp_path,
                                                capsys):
        root = tmp_path / "runs"
        assert main(["history", "--ingest",
                     self._write(bench_doc, tmp_path / "honest.json"),
                     "--runs-root", str(root)]) == 0
        capsys.readouterr()
        assert main(["perf", "--scale", "0.05", "--repeats", "1",
                     "--no-gc-heavy",
                     "--output", str(tmp_path / "BENCH.json"),
                     "--gate", "--gate-threshold", "100",
                     "--runs-root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "gate: ok" in out

    def test_gate_refuses_tick_diverged_history(self, bench_doc, tmp_path,
                                                capsys):
        """Indexed rows measuring different simulated work must be
        refused -- naming the benchmark and both tick values -- exactly
        like the single-file --baseline comparison."""
        root = tmp_path / "runs"
        doctored = copy.deepcopy(bench_doc)
        name = doctored["benchmarks"][0]["name"]
        true_ticks = doctored["benchmarks"][0]["ticks"]
        doctored["benchmarks"][0]["ticks"] = true_ticks + 1
        assert main(["history", "--ingest",
                     self._write(doctored, tmp_path / "diverged.json"),
                     "--runs-root", str(root)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["perf", "--scale", "0.05", "--repeats", "1",
                  "--no-gc-heavy",
                  "--output", str(tmp_path / "BENCH.json"),
                  "--gate", "--runs-root", str(root)])
        message = str(excinfo.value)
        assert excinfo.value.code != 0
        assert name in message
        assert str(true_ticks + 1) in message   # indexed ticks
        assert str(true_ticks) in message       # current ticks
        assert "cannot gate" in message

    def test_gate_requires_the_index(self, tmp_path):
        with pytest.raises(SystemExit, match="--gate needs the index"):
            main(["perf", "--scale", "0.05", "--repeats", "1",
                  "--no-gc-heavy",
                  "--output", str(tmp_path / "BENCH.json"),
                  "--gate", "--no-index"])

    def test_ingest_rejects_invalid_documents(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit):
            main(["history", "--ingest", str(bad),
                  "--runs-root", str(tmp_path / "runs")])
