"""Process-pool experiment scheduler: graph semantics and determinism."""

from unittest import mock

import pytest

from repro.analysis import scheduler as scheduler_mod
from repro.analysis.scheduler import Job, JobError, JobGraph, Scheduler

# Job functions must be module-level so pool workers can unpickle them.


def add(a, b):
    return a + b


def square(x):
    return x * x


def combine(deps, suffix):
    return "+".join(f"{key}={value}" for key, value in deps.items()) \
        + f":{suffix}"


def boom():
    raise RuntimeError("kaboom")


def make_graph():
    graph = JobGraph()
    graph.add("a", add, 1, 2)
    graph.add("b", square, 4)
    graph.add("c", combine, "done", deps=("a", "b"))
    return graph


class TestJobGraph:
    def test_insertion_order_is_merge_order(self):
        graph = make_graph()
        assert graph.job_ids() == ["a", "b", "c"]

    def test_duplicate_id_rejected(self):
        graph = JobGraph()
        graph.add("a", add, 1, 2)
        with pytest.raises(ValueError, match="duplicate"):
            graph.add("a", add, 3, 4)
        with pytest.raises(ValueError, match="duplicate"):
            graph.add_job(Job("a", add, (5, 6)))

    def test_unknown_dependency_rejected(self):
        graph = JobGraph()
        graph.add("a", add, 1, 2, deps=("ghost",))
        with pytest.raises(ValueError, match="unknown job 'ghost'"):
            graph.waves()

    def test_cycle_rejected(self):
        graph = JobGraph()
        graph.add("a", add, 1, 2, deps=("b",))
        graph.add("b", square, 3, deps=("a",))
        with pytest.raises(ValueError, match="cycle"):
            graph.waves()

    def test_waves_respect_dependencies(self):
        graph = make_graph()
        waves = [[job.job_id for job in wave] for wave in graph.waves()]
        assert waves == [["a", "b"], ["c"]]


class TestSerialScheduler:
    def test_runs_in_order_with_dep_results(self):
        results = Scheduler(jobs=1).run(make_graph())
        assert results == {"a": 3, "b": 16, "c": "a=3+b=16:done"}
        assert list(results) == ["a", "b", "c"]

    def test_job_error_names_the_job(self):
        graph = JobGraph()
        graph.add("explodes", boom)
        with pytest.raises(JobError, match="explodes.*kaboom"):
            Scheduler(jobs=1).run(graph)

    def test_map_preserves_input_order(self):
        results = Scheduler(jobs=1).map(square, [(3,), (1,), (2,)])
        assert results == [9, 1, 4]

    def test_invalid_job_count(self):
        with pytest.raises(ValueError):
            Scheduler(jobs=0)


class TestPoolScheduler:
    def test_results_identical_to_serial(self):
        serial = Scheduler(jobs=1).run(make_graph())
        with Scheduler(jobs=2) as scheduler:
            parallel = scheduler.run(make_graph())
        assert parallel == serial
        assert list(parallel) == list(serial)

    def test_map_identical_to_serial(self):
        payloads = [(n,) for n in range(20)]
        serial = Scheduler(jobs=1).map(square, payloads)
        with Scheduler(jobs=3) as scheduler:
            assert scheduler.map(square, payloads) == serial

    def test_job_error_propagates_with_job_id(self):
        graph = JobGraph()
        graph.add("fine", add, 1, 1)
        graph.add("explodes", boom)
        with Scheduler(jobs=2) as scheduler:
            with pytest.raises(JobError, match="explodes"):
                scheduler.run(graph)

    def test_pool_survives_multiple_runs(self):
        with Scheduler(jobs=2) as scheduler:
            first = scheduler.run(make_graph())
            second = scheduler.run(make_graph())
        assert first == second

    def test_close_is_idempotent(self):
        scheduler = Scheduler(jobs=2)
        scheduler.map(square, [(1,)])
        scheduler.close()
        scheduler.close()


def sleepy_identity(x, delay=0.01):
    import time
    time.sleep(delay)
    return x


def warm_stamp(directory):
    """Warmup hook: leave one stamp file per warmed worker process."""
    import os
    import pathlib
    pathlib.Path(directory, f"warm-{os.getpid()}").touch()


class TestStreamingAndStats:
    """The persistent pool streams completions (no wave barriers) and
    accounts its overhead into ``SchedulerStats``."""

    def test_serial_counts_jobs_without_pool_overhead(self):
        scheduler = Scheduler(jobs=1)
        scheduler.run(make_graph())
        assert scheduler.stats.jobs_executed == 3
        assert scheduler.stats.spawn_seconds == 0.0
        assert scheduler.stats.worker_seconds == 0.0

    def test_pool_stats_accumulate_per_job(self):
        with Scheduler(jobs=2) as scheduler:
            scheduler.run(make_graph())
            scheduler.run(make_graph())
            stats = scheduler.stats
        assert stats.jobs_executed == 6
        assert stats.spawn_seconds > 0.0  # pool created exactly once
        assert stats.worker_seconds > 0.0
        assert stats.transfer_seconds >= 0.0
        assert stats.merge_seconds >= 0.0

    def test_as_dict_is_the_bench_overhead_shape(self):
        with Scheduler(jobs=2) as scheduler:
            scheduler.run(make_graph())
            snapshot = scheduler.stats.as_dict()
        assert set(snapshot) == {"jobs_executed", "spawn_seconds",
                                 "worker_seconds", "transfer_seconds",
                                 "merge_seconds"}
        assert snapshot["jobs_executed"] == 3

    def test_deep_dependency_chain_streams_in_order(self):
        """A diamond-with-tail graph merges deterministically even when
        completions arrive out of submission order."""
        graph = JobGraph()
        graph.add("slow", sleepy_identity, 1, 0.05)
        graph.add("quick", sleepy_identity, 2, 0.0)
        graph.add("join", combine, "j", deps=("slow", "quick"))
        graph.add("tail", combine, "t", deps=("join",))
        serial = Scheduler(jobs=1).run(graph)
        graph2 = JobGraph()
        graph2.add("slow", sleepy_identity, 1, 0.05)
        graph2.add("quick", sleepy_identity, 2, 0.0)
        graph2.add("join", combine, "j", deps=("slow", "quick"))
        graph2.add("tail", combine, "t", deps=("join",))
        with Scheduler(jobs=2) as scheduler:
            parallel = scheduler.run(graph2)
        assert parallel == serial
        assert list(parallel) == list(serial)

    def test_warmup_runs_once_per_worker(self, tmp_path):
        with Scheduler(jobs=2,
                       warmup=(warm_stamp, (str(tmp_path),))) as scheduler:
            scheduler.run(make_graph())
            scheduler.run(make_graph())
        assert len(list(tmp_path.glob("warm-*"))) == 2

    def test_bare_callable_warmup(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with Scheduler(jobs=2, warmup=warm_cwd_stamp) as scheduler:
            scheduler.map(square, [(1,), (2,)])
        assert list(tmp_path.glob("warm-*"))


def warm_cwd_stamp():
    warm_stamp(".")


class TestShutdownPaths:
    """close() drains workers gracefully; terminate() is the error path."""

    def test_exit_without_error_uses_close(self):
        scheduler = Scheduler(jobs=2)
        scheduler.map(square, [(1,)])
        pool = scheduler._pool
        with mock.patch.object(pool, "close",
                               wraps=pool.close) as closed, \
                mock.patch.object(pool, "terminate",
                                  wraps=pool.terminate) as killed:
            scheduler.__exit__(None, None, None)
        closed.assert_called_once()
        killed.assert_not_called()
        assert scheduler._pool is None

    def test_exit_with_error_terminates(self):
        scheduler = Scheduler(jobs=2)
        scheduler.map(square, [(1,)])
        pool = scheduler._pool
        with mock.patch.object(pool, "close",
                               wraps=pool.close) as closed, \
                mock.patch.object(pool, "terminate",
                                  wraps=pool.terminate) as killed:
            scheduler.__exit__(RuntimeError, RuntimeError("boom"), None)
        killed.assert_called_once()
        closed.assert_not_called()
        assert scheduler._pool is None

    def test_terminate_is_idempotent(self):
        scheduler = Scheduler(jobs=2)
        scheduler.map(square, [(1,)])
        scheduler.terminate()
        scheduler.terminate()


class TestSpawnStartMethod:
    """Spawn workers fix their hash seed at interpreter startup, before
    any pool initializer runs -- so spawn-only platforms are usable only
    under an externally fixed PYTHONHASHSEED."""

    def test_spawn_only_without_hashseed_fails_fast(self, monkeypatch):
        monkeypatch.setattr(scheduler_mod.multiprocessing,
                            "get_all_start_methods", lambda: ["spawn"])
        monkeypatch.delenv("PYTHONHASHSEED", raising=False)
        scheduler = Scheduler(jobs=2)
        with pytest.raises(RuntimeError, match="PYTHONHASHSEED"):
            scheduler._ensure_pool()
        assert scheduler._pool is None

    def test_spawn_only_with_hashseed_is_allowed(self, monkeypatch):
        monkeypatch.setattr(scheduler_mod.multiprocessing,
                            "get_all_start_methods", lambda: ["spawn"])
        monkeypatch.setenv("PYTHONHASHSEED", "2009")
        with Scheduler(jobs=2) as scheduler:
            assert scheduler.map(square, [(2,), (3,)]) == [4, 9]

    def test_fork_platform_never_consults_the_environment(self,
                                                          monkeypatch):
        monkeypatch.delenv("PYTHONHASHSEED", raising=False)
        with Scheduler(jobs=2) as scheduler:
            assert scheduler.map(square, [(2,)]) == [4]
