"""Table / series / chart rendering."""

import pytest

from repro.analysis.tables import (ExperimentRow, format_pct,
                                   render_fraction_chart, render_series,
                                   render_table)


class TestFormatPct:
    def test_values(self):
        assert format_pct(0.0) == "0.0%"
        assert format_pct(1.0) == "100.0%"
        assert format_pct(None) == "n/a"


class TestExperimentRow:
    def test_percent_unit(self):
        row = ExperimentRow("b", "m", 0.5, 0.52)
        assert row.render_values() == ("50.0%", "52.0%")

    def test_speedup_unit(self):
        row = ExperimentRow("b", "m", 2.5, 2.42, unit="x")
        assert row.render_values() == ("2.50x", "2.42x")

    def test_raw_unit(self):
        row = ExperimentRow("b", "m", None, 7, unit="")
        assert row.render_values() == ("n/a", "7")


class TestRenderFractionChart:
    def test_bar_segments_are_nested(self):
        text = render_fraction_chart([(1, 0.8, 0.5, 0.2)], width=20)
        bar_line = next(line for line in text.splitlines()
                        if line.strip().startswith("1"))
        bar = bar_line.split("|")[1]
        assert bar.count("#") == 4    # 0.2 * 20
        assert bar.count("=") == 6    # (0.5 - 0.2) * 20
        assert bar.count("-") == 6    # (0.8 - 0.5) * 20

    def test_clamps_out_of_range(self):
        text = render_fraction_chart([(1, 1.4, -0.2, 0.5)], width=10)
        bar = next(line for line in text.splitlines()
                   if line.strip().startswith("1")).split("|")[1]
        assert len(bar) == 10
        assert bar == "-" * 10  # live clamped to 1, used to 0

    def test_legend_and_axes(self):
        text = render_fraction_chart([(1, 0.5, 0.3, 0.1)])
        assert "0%" in text and "100%" in text
        assert "# core" in text

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_fraction_chart([], width=4)

    def test_empty_series(self):
        text = render_fraction_chart([])
        assert "cycle" in text


class TestRenderTable:
    def test_note_column(self):
        text = render_table("T", [ExperimentRow("b", "m", None, 1.0,
                                                note="hello")])
        assert "hello" in text
        assert text.splitlines()[0] == "T"


class TestRenderSeries:
    def test_floats_formatted(self):
        text = render_series("S", ("a",), [(0.123456,)])
        assert "0.123" in text

    def test_mixed_types(self):
        text = render_series("S", ("n", "f"), [(3, 0.5)])
        assert "3" in text and "0.500" in text
