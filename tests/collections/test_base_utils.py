"""Element semantics and the box pool."""

import pytest
from hypothesis import given, strategies as st

from repro.collections.base import (BoxPool, element_hash, element_key,
                                    values_equal)
from repro.runtime.vm import RuntimeEnvironment


@pytest.fixture
def fresh_vm():
    return RuntimeEnvironment(gc_threshold_bytes=None)


class TestElementKey:
    def test_heap_objects_key_by_identity(self, fresh_vm):
        a = fresh_vm.allocate_data("R")
        b = fresh_vm.allocate_data("R")
        assert element_key(a) != element_key(b)
        assert element_key(a) == element_key(a)

    def test_primitives_key_by_type_and_value(self):
        assert element_key(1) == element_key(1)
        assert element_key(1) != element_key(1.0)
        assert element_key(1) != element_key(True)  # Integer vs Boolean
        assert element_key("a") != element_key(1)


class TestValuesEqual:
    def test_identity_for_heap_objects(self, fresh_vm):
        a = fresh_vm.allocate_data("R")
        b = fresh_vm.allocate_data("R")
        assert values_equal(a, a)
        assert not values_equal(a, b)
        assert not values_equal(a, 1)

    def test_value_equality_for_primitives(self):
        assert values_equal(3, 3)
        assert not values_equal(3, 4)
        assert not values_equal(3, 3.0)  # distinct boxed types
        assert not values_equal(1, True)

    @given(st.integers(), st.integers())
    def test_matches_python_for_ints(self, a, b):
        assert values_equal(a, b) == (a == b)


class TestElementHash:
    def test_equal_values_hash_equal(self):
        assert element_hash(7) == element_hash(7)
        assert element_hash("x") == element_hash("x")

    def test_hash_is_31_bit(self, fresh_vm):
        obj = fresh_vm.allocate_data("R")
        for value in (obj, 123456789, "text", -5):
            assert 0 <= element_hash(value) < 2 ** 31

    def test_identity_hash_for_heap_objects(self, fresh_vm):
        a = fresh_vm.allocate_data("R")
        b = fresh_vm.allocate_data("R")
        assert element_hash(a) != element_hash(b)


class TestBoxPool:
    def test_heap_objects_pass_through(self, fresh_vm):
        pool = BoxPool(fresh_vm)
        record = fresh_vm.allocate_data("R")
        assert pool.ref_for(record) == record.obj_id
        assert pool.release(record) == record.obj_id
        assert pool.box_count == 0

    def test_primitive_boxing_is_refcounted(self, fresh_vm):
        pool = BoxPool(fresh_vm)
        first = pool.ref_for(42)
        second = pool.ref_for(42)
        assert first == second  # one box per distinct value
        assert pool.box_count == 1
        assert pool.release(42) == first
        assert pool.box_count == 1  # one occurrence left
        assert pool.release(42) == first
        assert pool.box_count == 0

    def test_distinct_values_get_distinct_boxes(self, fresh_vm):
        pool = BoxPool(fresh_vm)
        assert pool.ref_for(1) != pool.ref_for(2)
        assert pool.box_count == 2

    def test_box_is_a_real_heap_object(self, fresh_vm):
        pool = BoxPool(fresh_vm)
        box_id = pool.ref_for(5)
        box = fresh_vm.heap.get(box_id)
        assert box.type_name == "Box"
        assert box.size == fresh_vm.model.box_size()

    def test_release_unknown_value_raises(self, fresh_vm):
        pool = BoxPool(fresh_vm)
        with pytest.raises(KeyError):
            pool.release(99)

    def test_peek_does_not_change_counts(self, fresh_vm):
        pool = BoxPool(fresh_vm)
        assert pool.peek(7) is None
        box_id = pool.ref_for(7)
        assert pool.peek(7) == box_id
        assert pool.box_count == 1

    def test_reboxing_after_full_release(self, fresh_vm):
        pool = BoxPool(fresh_vm)
        first = pool.ref_for(9)
        pool.release(9)
        second = pool.ref_for(9)
        assert first != second  # a fresh box, the old one is garbage
