"""The hash-backed list adapter (LinkedHashSet backing a List)."""

import pytest

from repro.collections.base import UnsupportedOperation
from repro.collections.hashed_list import HashBackedListImpl
from repro.collections.lists import ArrayListImpl


class TestSemantics:
    def test_insertion_order_preserved(self, vm):
        lst = HashBackedListImpl(vm)
        for value in (5, 3, 9):
            lst.add(value)
        assert lst.peek_values() == [5, 3, 9]
        assert list(lst.iter_values()) == [5, 3, 9]

    def test_duplicates_dropped(self, vm):
        """The set-backed list deduplicates -- the semantic change the
        rule only allows for add/contains/iterate usage."""
        lst = HashBackedListImpl(vm)
        lst.add("a")
        lst.add("a")
        assert lst.size == 1

    def test_positional_reads(self, vm):
        lst = HashBackedListImpl(vm)
        for value in "abc":
            lst.add(value)
        assert lst.get(0) == "a"
        assert lst.get(2) == "c"
        with pytest.raises(IndexError):
            lst.get(3)

    def test_index_of(self, vm):
        lst = HashBackedListImpl(vm)
        for value in "abc":
            lst.add(value)
        assert lst.index_of("b") == 1
        assert lst.index_of("z") == -1

    def test_removals(self, vm):
        lst = HashBackedListImpl(vm)
        for value in "abc":
            lst.add(value)
        assert lst.remove_at(1) == "b"
        assert lst.remove_value("c")
        assert not lst.remove_value("c")
        assert lst.peek_values() == ["a"]

    def test_positional_mutation_unsupported(self, vm):
        lst = HashBackedListImpl(vm)
        lst.add("a")
        with pytest.raises(UnsupportedOperation):
            lst.add_at(0, "x")
        with pytest.raises(UnsupportedOperation):
            lst.set_at(0, "x")

    def test_clear(self, vm):
        lst = HashBackedListImpl(vm)
        lst.add(1)
        lst.clear()
        assert lst.size == 0


class TestWhyTheRuleFires:
    def test_contains_beats_array_list_at_size(self, vm):
        """Table 2 rule 1: heavy contains on a large list is better
        served by the hash-backed implementation."""
        array_list = ArrayListImpl(vm)
        hashed = HashBackedListImpl(vm)
        for i in range(200):
            array_list.add(i)
            hashed.add(i)
        start = vm.now
        array_list.contains(199)
        scan_cost = vm.now - start
        start = vm.now
        hashed.contains(199)
        hash_cost = vm.now - start
        assert hash_cost < scan_cost

    def test_footprint_invariant(self, vm):
        lst = HashBackedListImpl(vm)
        for i in range(40):
            lst.add(i)
            triple = lst.adt_footprint()
            assert triple.live >= triple.used >= triple.core >= 0
