"""The shared chained hash-table engine."""

import pytest

from repro.collections.hashing import HashTableEngine, next_power_of_two
from repro.collections.maps import HashMapImpl
from repro.collections.sets import HashSetImpl


class TestNextPowerOfTwo:
    @pytest.mark.parametrize("value,expected", [
        (0, 1), (1, 1), (2, 2), (3, 4), (16, 16), (17, 32), (1000, 1024)])
    def test_values(self, value, expected):
        assert next_power_of_two(value) == expected


class TestEngineViaMap:
    def test_capacity_rounds_to_power_of_two(self, vm):
        assert HashMapImpl(vm, initial_capacity=20).capacity == 32
        assert HashMapImpl(vm, initial_capacity=16).capacity == 16

    def test_load_factor_resize_boundary(self, vm):
        mapping = HashMapImpl(vm, initial_capacity=8)
        for i in range(6):  # 6 == 8 * 0.75: at the threshold, no resize
            mapping.put(i, i)
        assert mapping.capacity == 8
        mapping.put(6, 6)
        assert mapping.capacity == 16

    def test_entries_survive_resize(self, vm):
        mapping = HashMapImpl(vm, initial_capacity=4)
        expected = {i: i * 3 for i in range(40)}
        for key, value in expected.items():
            mapping.put(key, value)
        assert dict(mapping.iter_items()) == expected

    def test_chain_probing_costs_scale_with_collisions(self, vm):
        """Many keys in one bucket make probes proportionally pricier --
        the clustering the paper's open-addressing caveat is about."""
        from repro.collections.base import element_hash

        mapping = HashMapImpl(vm, initial_capacity=1024)
        # Gather keys that genuinely land in one bucket of the 1024-slot
        # table under mask indexing.
        target = element_hash(0) & 1023
        colliding, candidate = [], 0
        while len(colliding) < 24:
            if element_hash(candidate) & 1023 == target:
                colliding.append(candidate)
            candidate += 1
        for key in colliding:
            mapping.put(key, key)
        start = vm.now
        mapping.get(colliding[-1])
        long_chain = vm.now - start
        start = vm.now
        mapping.get(colliding[0])
        short_chain = vm.now - start
        assert long_chain > short_chain

    def test_clear_retains_table(self, vm):
        mapping = HashMapImpl(vm, initial_capacity=32)
        for i in range(10):
            mapping.put(i, i)
        mapping.clear()
        assert mapping.capacity == 32
        assert mapping.size == 0

    def test_invalid_load_factor(self, vm):
        with pytest.raises(ValueError):
            HashTableEngine(HashSetImpl(vm), is_map=False, load_factor=0)


class TestFootprintPieces:
    def test_used_counts_occupied_slots_only(self, vm):
        sparse = HashSetImpl(vm, initial_capacity=64)
        sparse.add("one")
        triple = sparse.adt_footprint()
        # Slack is the 63 unoccupied slots.
        expected_slack = (vm.model.ref_array_size(64)
                          - vm.model.align(vm.model.array_header_bytes
                                           + 1 * vm.model.pointer_bytes))
        assert triple.slack == expected_slack

    def test_linked_entries_are_heavier(self, vm):
        plain = HashSetImpl(vm)
        linked_engine = HashTableEngine(HashSetImpl(vm), is_map=False,
                                        linked=True)
        assert linked_engine.entry_size > plain._table.entry_size
        assert linked_engine.entry_type_name == "LinkedHashMap$Entry"

    def test_internal_ids_count(self, vm):
        mapping = HashMapImpl(vm)
        for i in range(5):
            mapping.put(i, i)
        internals = list(mapping.adt_internal_ids())
        assert len(internals) == 6  # table + 5 entries


class TestIncrementalBookkeeping:
    """The O(1) ``used_bytes`` occupancy counter and the version-token
    caches must stay exact against brute-force recomputation through
    every structural mutation (insert, overwrite, remove, resize,
    clear)."""

    def _occupied_recount(self, table):
        return sum(1 for bucket in table._buckets if bucket)

    def _exercise(self, table, mutate_steps):
        version = table.footprint_version
        for step, bumps in mutate_steps:
            step()
            assert table._occupied == self._occupied_recount(table), \
                "occupancy counter drifted"
            if bumps:
                assert table.footprint_version != version, \
                    "structural mutation did not bump the version token"
            else:
                assert table.footprint_version == version, \
                    "non-structural mutation bumped the version token"
            version = table.footprint_version

    def test_occupied_and_version_track_every_mutation(self, vm):
        mapping = HashMapImpl(vm, initial_capacity=4)
        table = mapping._table
        steps = [(lambda i=i: mapping.put(i, i), True)
                 for i in range(20)]                    # inserts + resizes
        steps.append((lambda: mapping.put(3, 99), False))  # value overwrite
        steps += [(lambda i=i: mapping.remove_key(i), True)
                  for i in range(0, 20, 3)]
        steps.append((lambda: mapping.clear(), True))
        self._exercise(table, steps)

    def test_internal_ids_cache_is_exact(self, vm):
        mapping = HashMapImpl(vm, initial_capacity=4)
        table = mapping._table

        def fresh_ids():
            return [table._table_obj.obj_id] \
                + [entry.heap_obj.obj_id for entry in table._order]

        for i in range(25):
            mapping.put(i, i)
            assert table.internal_ids() == fresh_ids()
        cached = table.internal_ids()
        assert table.internal_ids() is cached  # stable until mutation
        mapping.remove_key(7)
        assert table.internal_ids() == fresh_ids()
        mapping.clear()
        assert table.internal_ids() == fresh_ids()
