"""Iterator objects and the shared-empty-iterator optimisation."""

import pytest

from repro.collections.base import CollectionKind, UnsupportedOperation
from repro.collections.iterators import (CollectionIterator,
                                         iterator_object_size, make_iterator)
from repro.collections.registry import default_registry
from repro.collections.wrappers import (ChameleonList, ChameleonMap,
                                        ChameleonSet)
from repro.profiler.counters import Op

LIST_IMPLS = list(default_registry().names_for_kind(CollectionKind.LIST))
SET_IMPLS = list(default_registry().names_for_kind(CollectionKind.SET))
MAP_IMPLS = list(default_registry().names_for_kind(CollectionKind.MAP))

#: Per-impl fill values honouring each implementation's type/arity
#: constraints (typed arrays, singleton, empty).
LIST_VALUES = {
    "DoubleArray": [0.5, 1.5, 2.5],
    "BoolArray": [True, False],
    "SingletonList": [7],
    "EmptyList": [],
}


class TestMakeIterator:
    def test_allocates_one_iterator_object(self, vm):
        before = vm.heap.total_allocated_objects
        iterator = make_iterator(vm, iter([1, 2]), empty=False)
        assert vm.heap.total_allocated_objects == before + 1
        assert iterator.heap_obj.type_name == "Iterator"
        assert iterator.heap_obj.size == iterator_object_size(vm)

    def test_iteration_protocol(self, vm):
        iterator = make_iterator(vm, iter("abc"), empty=False)
        assert list(iterator) == ["a", "b", "c"]
        assert iterator.returned == 3

    def test_shared_empty_skips_allocation(self, vm):
        before = vm.heap.total_allocated_objects
        iterator = make_iterator(vm, iter(()), empty=True,
                                 use_shared_empty=True)
        assert vm.heap.total_allocated_objects == before
        assert iterator.is_shared_empty
        assert list(iterator) == []

    def test_empty_without_optimisation_still_allocates(self, vm):
        """Section 5.4: some interfaces require a fresh iterator even for
        empty collections; the optimisation is opt-in."""
        before = vm.heap.total_allocated_objects
        iterator = make_iterator(vm, iter(()), empty=True,
                                 use_shared_empty=False)
        assert vm.heap.total_allocated_objects == before + 1
        assert not iterator.is_shared_empty

    def test_context_attributed(self, vm):
        iterator = make_iterator(vm, iter([1]), empty=False, context_id=9)
        assert iterator.heap_obj.context_id == 9


class TestIteratorGarbage:
    def test_iterators_die_at_gc(self, vm):
        lst = ChameleonList(vm)
        lst.pin()
        lst.add(1)
        for _ in range(10):
            list(lst.iterate())
        live_iterators = sum(1 for obj in vm.heap.objects()
                             if obj.type_name == "Iterator")
        assert live_iterators == 10
        vm.collect()
        live_iterators = sum(1 for obj in vm.heap.objects()
                             if obj.type_name == "Iterator")
        assert live_iterators == 0

    def test_iteration_pressure_drives_gc(self):
        """Massive iterator creation alone fills the young generation --
        the paper's 'massive creation of iterator objects' observation."""
        from repro.runtime.vm import RuntimeEnvironment

        vm = RuntimeEnvironment(gc_threshold_bytes=8 * 1024)
        lst = ChameleonList(vm)
        lst.pin()
        lst.add(1)
        for _ in range(2000):
            list(lst.iterate())
        assert vm.gc.cycle_count >= 4


class TestWrapperIntegration:
    def test_set_iteration_records_ops(self, profiled_vm):
        s = ChameleonSet(profiled_vm)
        list(s.iterate())          # empty
        s.add("x")
        list(s.iterate())          # nonempty
        info = s.object_info
        assert info.count(Op.ITERATE) == 2
        assert info.count(Op.ITER_EMPTY) == 1

    def test_iteration_charges_traversal(self, vm):
        lst = ChameleonList(vm)
        for i in range(50):
            lst.add(i)
        before = vm.now
        values = list(lst.iterate())
        assert values == list(range(50))
        assert vm.now - before >= 50  # at least one tick per element

    def test_shared_empty_opt_in_via_wrapper(self, vm):
        lst = ChameleonList(vm, use_shared_empty_iterator=True)
        iterator = lst.iterate()
        assert iterator.is_shared_empty
        lst.add(1)
        assert not lst.iterate().is_shared_empty


class TestUniformSemanticsAcrossImpls:
    """The differential fuzzer normalises iteration assuming every
    registered implementation honours the same contract: empty iteration
    through the shared-empty optimisation allocates nothing, and mutation
    during iteration never disturbs an open iterator (snapshot-at-start).
    Pin both, per implementation, so a new backing cannot silently break
    the replay normalisation."""

    @pytest.mark.parametrize("impl", LIST_IMPLS)
    def test_shared_empty_list_iteration(self, vm, impl):
        lst = ChameleonList(vm, impl=impl, use_shared_empty_iterator=True)
        before = vm.heap.total_allocated_objects
        iterator = lst.iterate()
        assert iterator.is_shared_empty
        assert iterator.heap_obj is None
        assert vm.heap.total_allocated_objects == before
        assert list(iterator) == []

    @pytest.mark.parametrize("impl", SET_IMPLS)
    def test_shared_empty_set_iteration(self, vm, impl):
        s = ChameleonSet(vm, impl=impl, use_shared_empty_iterator=True)
        before = vm.heap.total_allocated_objects
        iterator = s.iterate()
        assert iterator.is_shared_empty
        assert vm.heap.total_allocated_objects == before
        assert list(iterator) == []

    @pytest.mark.parametrize("impl", MAP_IMPLS)
    def test_shared_empty_map_iteration(self, vm, impl):
        mapping = ChameleonMap(vm, impl=impl,
                               use_shared_empty_iterator=True)
        before = vm.heap.total_allocated_objects
        for iterator in (mapping.iterate(), mapping.iterate_keys(),
                         mapping.iterate_items()):
            assert iterator.is_shared_empty
            assert list(iterator) == []
        assert vm.heap.total_allocated_objects == before

    @pytest.mark.parametrize("impl", LIST_IMPLS)
    def test_list_mutation_during_iteration_yields_snapshot(self, vm,
                                                            impl):
        values = LIST_VALUES.get(impl, [1, 2, 3])
        lst = ChameleonList(vm, impl=impl)
        for value in values:
            lst.add(value)
        iterator = lst.iterate()
        got = [next(iterator)] if values else []
        try:
            lst.clear()  # the mutation racing the open iterator
        except UnsupportedOperation:
            pytest.skip(f"{impl} is immutable; nothing can race")
        got.extend(iterator)
        assert got == values
        assert lst.size() == 0

    @pytest.mark.parametrize("impl", SET_IMPLS)
    def test_set_mutation_during_iteration_yields_snapshot(self, vm, impl):
        s = ChameleonSet(vm, impl=impl)
        for value in (1, 2, 3):
            s.add(value)
        iterator = s.iterate()
        got = [next(iterator)]
        s.clear()
        got.extend(iterator)
        assert sorted(got) == [1, 2, 3]  # order is impl-defined
        assert s.size() == 0

    @pytest.mark.parametrize("impl", MAP_IMPLS)
    def test_map_mutation_during_iteration_yields_snapshot(self, vm, impl):
        mapping = ChameleonMap(vm, impl=impl)
        for k in (1, 2, 3):
            mapping.put(k, k * 10)
        iterator = mapping.iterate_items()
        got = [next(iterator)]
        mapping.clear()
        got.extend(iterator)
        assert sorted(got) == [(1, 10), (2, 20), (3, 30)]
        assert mapping.size() == 0


def _compiled_matrix_cases():
    """(workload, impl) pairs: the per-impl matrix over the source
    traces of two library scenarios instead of hand-written fills."""
    from repro.verify.trace import eligible_impls
    from repro.workloads.compiled import make_scenario

    cases = []
    for name in ("compiled-tvla-map", "compiled-pmd-set"):
        trace = make_scenario(name).source_traces()[0]
        for impl in eligible_impls(trace):
            cases.append(pytest.param(name, impl, id=f"{name}-{impl}"))
    return cases


class TestUniformSemanticsViaCompiledWorkloads:
    """The same uniform-contract matrix, driven by compiled workloads.

    Hand-written fills above choose their own values; here the op mix
    comes from recorded benchmark traces (including live iterators racing
    mutations), executed through the compiled path against every
    eligible implementation.  Outcome- and drop-out-parity with
    ``replay_trace`` per implementation is exactly the interchangeability
    contract, proven beyond the baseline implementation and beyond
    hand-picked operations.
    """

    @pytest.mark.parametrize("workload,impl", _compiled_matrix_cases())
    def test_compiled_matches_replay_per_impl(self, workload, impl):
        from repro.runtime.vm import RuntimeEnvironment
        from repro.verify.compile import TraceInstance, compile_trace
        from repro.verify.trace import replay_trace
        from repro.workloads.compiled import make_scenario

        trace = make_scenario(workload).source_traces()[0]
        reference = replay_trace(trace, impl, sanitize=True)
        assert reference.violations == []
        vm = RuntimeEnvironment(gc_threshold_bytes=None)
        instance = TraceInstance(vm, compile_trace(trace), impl=impl,
                                 collect_outcomes=True)
        instance.run()
        vm.collect()
        assert instance.outcomes == reference.outcomes
        assert instance.dropped_at == reference.dropped_at
        assert vm.now == reference.ticks

    @pytest.mark.parametrize("workload", ["compiled-tvla-map",
                                          "compiled-pmd-set"])
    def test_source_trace_diffs_clean_across_registry(self, workload):
        from repro.verify.trace import diff_trace
        from repro.workloads.compiled import make_scenario

        trace = make_scenario(workload).source_traces()[0]
        report = diff_trace(trace, sanitize=True)
        assert report.ok, report.summary()
