"""List implementations: semantics, growth, footprint accounting."""

import pytest

from repro.collections.lists import (ArrayListImpl, EmptyListImpl,
                                     IntArrayImpl, LazyArrayListImpl,
                                     LinkedListImpl, SingletonListImpl,
                                     grow_capacity)
from repro.collections.base import UnsupportedOperation


class TestGrowthFormula:
    def test_paper_formula(self):
        """newCapacity = (oldCapacity * 3) / 2 + 1 (section 2.2)."""
        assert grow_capacity(100, 101) == 151
        assert grow_capacity(10, 11) == 16
        assert grow_capacity(0, 1) == 1

    def test_clamps_to_needed(self):
        assert grow_capacity(4, 100) == 100


class TestArrayList:
    def test_append_get(self, vm):
        lst = ArrayListImpl(vm)
        for i in range(5):
            lst.add(i * 10)
        assert lst.size == 5
        assert [lst.get(i) for i in range(5)] == [0, 10, 20, 30, 40]

    def test_default_capacity(self, vm):
        assert ArrayListImpl(vm).capacity == 10

    def test_explicit_capacity(self, vm):
        assert ArrayListImpl(vm, initial_capacity=3).capacity == 3

    def test_growth_on_overflow(self, vm):
        lst = ArrayListImpl(vm, initial_capacity=2)
        for i in range(3):
            lst.add(i)
        assert lst.capacity == 4  # (2*3)//2+1

    def test_paper_growth_example(self, vm):
        """Section 2.2: capacity 100 holding 100; one more add -> 151."""
        lst = ArrayListImpl(vm, initial_capacity=100)
        for i in range(100):
            lst.add(i)
        assert lst.capacity == 100
        lst.add(100)
        assert lst.capacity == 151

    def test_insert_shifts(self, vm):
        lst = ArrayListImpl(vm)
        lst.add("a")
        lst.add("c")
        lst.add_at(1, "b")
        assert lst.peek_values() == ["a", "b", "c"]

    def test_insert_bounds(self, vm):
        lst = ArrayListImpl(vm)
        with pytest.raises(IndexError):
            lst.add_at(1, "x")
        lst.add_at(0, "x")  # == size is allowed

    def test_set_at_returns_old(self, vm):
        lst = ArrayListImpl(vm)
        lst.add("a")
        assert lst.set_at(0, "b") == "a"
        assert lst.get(0) == "b"

    def test_remove_at(self, vm):
        lst = ArrayListImpl(vm)
        for value in "abc":
            lst.add(value)
        assert lst.remove_at(1) == "b"
        assert lst.peek_values() == ["a", "c"]

    def test_remove_value_first_occurrence(self, vm):
        lst = ArrayListImpl(vm)
        for value in ("x", "y", "x"):
            lst.add(value)
        assert lst.remove_value("x")
        assert lst.peek_values() == ["y", "x"]
        assert not lst.remove_value("z")

    def test_index_of_and_contains(self, vm):
        lst = ArrayListImpl(vm)
        for value in "abc":
            lst.add(value)
        assert lst.index_of("b") == 1
        assert lst.index_of("z") == -1
        assert lst.contains("c")
        assert not lst.contains("q")

    def test_remove_first(self, vm):
        lst = ArrayListImpl(vm)
        lst.add(1)
        lst.add(2)
        assert lst.remove_first() == 1
        assert lst.peek_values() == [2]

    def test_remove_first_empty_raises(self, vm):
        with pytest.raises(IndexError):
            ArrayListImpl(vm).remove_first()

    def test_clear_keeps_capacity(self, vm):
        lst = ArrayListImpl(vm, initial_capacity=8)
        for i in range(8):
            lst.add(i)
        lst.clear()
        assert lst.size == 0
        assert lst.capacity == 8

    def test_iter_values(self, vm):
        lst = ArrayListImpl(vm)
        for i in range(4):
            lst.add(i)
        assert list(lst.iter_values()) == [0, 1, 2, 3]

    def test_get_bounds(self, vm):
        lst = ArrayListImpl(vm)
        lst.add(1)
        with pytest.raises(IndexError):
            lst.get(1)
        with pytest.raises(IndexError):
            lst.get(-1)

    def test_duplicate_elements_supported(self, vm):
        lst = ArrayListImpl(vm)
        lst.add("dup")
        lst.add("dup")
        lst.remove_value("dup")
        assert lst.peek_values() == ["dup"]

    def test_operations_charge_clock(self, vm):
        lst = ArrayListImpl(vm)
        before = vm.now
        lst.add(1)
        assert vm.now > before


class TestArrayListFootprint:
    def test_empty_footprint(self, vm):
        lst = ArrayListImpl(vm, initial_capacity=10)
        triple = lst.adt_footprint()
        expected_live = (vm.model.object_size(ref_fields=1, int_fields=2)
                         + vm.model.ref_array_size(10))
        assert triple.live == expected_live
        assert triple.core == 0

    def test_slack_is_unused_capacity(self, vm):
        lst = ArrayListImpl(vm, initial_capacity=10)
        for i in range(4):
            lst.add(i)
        triple = lst.adt_footprint()
        slack = (vm.model.ref_array_size(10)
                 - vm.model.align(vm.model.array_header_bytes
                                  + 4 * vm.model.pointer_bytes))
        assert triple.slack == slack

    def test_full_list_has_minimal_slack(self, vm):
        lst = ArrayListImpl(vm, initial_capacity=4)
        for i in range(4):
            lst.add(i)
        assert lst.adt_footprint().slack == 0

    def test_internal_ids_cover_backing_array(self, vm):
        lst = ArrayListImpl(vm)
        internals = list(lst.adt_internal_ids())
        assert len(internals) == 1
        assert vm.heap.get(internals[0]).type_name == "Object[]"

    def test_resize_replaces_backing_array(self, vm):
        lst = ArrayListImpl(vm, initial_capacity=1)
        old_ids = list(lst.adt_internal_ids())
        lst.add(1)
        lst.add(2)  # forces growth
        new_ids = list(lst.adt_internal_ids())
        assert old_ids != new_ids


class TestLazyArrayList:
    def test_no_array_until_update(self, vm):
        lst = LazyArrayListImpl(vm)
        assert lst.capacity == 0
        assert list(lst.adt_internal_ids()) == []
        anchor_only = vm.model.object_size(ref_fields=1, int_fields=2)
        assert lst.adt_footprint().live == anchor_only

    def test_first_update_allocates(self, vm):
        lst = LazyArrayListImpl(vm)
        lst.add(1)
        assert lst.capacity == 10
        assert lst.get(0) == 1

    def test_reads_on_empty_lazy_list(self, vm):
        lst = LazyArrayListImpl(vm)
        assert lst.size == 0
        assert not lst.contains(1)
        assert list(lst.iter_values()) == []

    def test_lazy_beats_eager_when_empty(self, vm):
        eager = ArrayListImpl(vm)
        lazy = LazyArrayListImpl(vm)
        assert lazy.adt_footprint().live < eager.adt_footprint().live


class TestLinkedList:
    def test_sentinel_entry_exists_when_empty(self, vm):
        """The bloat finding: an empty LinkedList still owns a 24-byte
        header entry (section 5.3)."""
        lst = LinkedListImpl(vm)
        triple = lst.adt_footprint()
        assert triple.slack == vm.model.linked_entry_size()
        internals = list(lst.adt_internal_ids())
        assert len(internals) == 1
        assert vm.heap.get(internals[0]).type_name == "LinkedList$Entry"

    def test_entry_per_element(self, vm):
        lst = LinkedListImpl(vm)
        for i in range(3):
            lst.add(i)
        assert len(list(lst.adt_internal_ids())) == 4  # sentinel + 3
        entry = vm.model.linked_entry_size()
        anchor = vm.model.object_size(ref_fields=1, int_fields=2)
        assert lst.adt_footprint().live == anchor + 4 * entry

    def test_list_semantics(self, vm):
        lst = LinkedListImpl(vm)
        for value in "abc":
            lst.add(value)
        lst.add_at(1, "x")
        assert lst.peek_values() == ["a", "x", "b", "c"]
        assert lst.remove_at(2) == "b"
        assert lst.remove_first() == "a"
        assert lst.index_of("c") == 1
        assert lst.set_at(0, "y") == "x"
        assert lst.peek_values() == ["y", "c"]

    def test_random_access_costs_more_in_the_middle(self, vm):
        lst = LinkedListImpl(vm)
        for i in range(100):
            lst.add(i)
        start = vm.now
        lst.get(0)
        head_cost = vm.now - start
        start = vm.now
        lst.get(50)
        middle_cost = vm.now - start
        assert middle_cost > head_cost

    def test_clear_keeps_sentinel(self, vm):
        lst = LinkedListImpl(vm)
        lst.add(1)
        lst.clear()
        assert lst.size == 0
        assert len(list(lst.adt_internal_ids())) == 1

    def test_removed_entries_become_unreferenced(self, vm):
        lst = LinkedListImpl(vm)
        lst.add("a")
        entry_id = list(lst.adt_internal_ids())[1]
        lst.remove_at(0)
        assert entry_id not in lst.anchor.refs


class TestSingletonList:
    def test_single_fill(self, vm):
        lst = SingletonListImpl(vm)
        lst.add("only")
        assert lst.size == 1
        assert lst.get(0) == "only"
        assert lst.contains("only")
        assert lst.index_of("only") == 0

    def test_second_add_rejected(self, vm):
        lst = SingletonListImpl(vm)
        lst.add("only")
        with pytest.raises(UnsupportedOperation):
            lst.add("more")

    def test_mutations_rejected(self, vm):
        lst = SingletonListImpl(vm)
        lst.add("only")
        with pytest.raises(UnsupportedOperation):
            lst.remove_at(0)
        with pytest.raises(UnsupportedOperation):
            lst.set_at(0, "x")
        with pytest.raises(UnsupportedOperation):
            lst.clear()
        with pytest.raises(UnsupportedOperation):
            lst.remove_value("only")

    def test_footprint_is_just_the_anchor(self, vm):
        lst = SingletonListImpl(vm)
        lst.add("only")
        triple = lst.adt_footprint()
        assert triple.live == vm.model.object_size(ref_fields=1)
        assert triple.slack == 0

    def test_smaller_than_array_list_for_one_element(self, vm):
        array_list = ArrayListImpl(vm)
        array_list.add("x")
        singleton = SingletonListImpl(vm)
        singleton.add("x")
        assert (singleton.adt_footprint().live
                < array_list.adt_footprint().live)

    def test_iteration(self, vm):
        lst = SingletonListImpl(vm)
        assert list(lst.iter_values()) == []
        lst.add(5)
        assert list(lst.iter_values()) == [5]


class TestEmptyList:
    def test_all_mutations_rejected(self, vm):
        lst = EmptyListImpl(vm)
        with pytest.raises(UnsupportedOperation):
            lst.add(1)
        with pytest.raises(UnsupportedOperation):
            lst.remove_at(0)
        with pytest.raises(UnsupportedOperation):
            lst.remove_value(1)

    def test_reads(self, vm):
        lst = EmptyListImpl(vm)
        assert lst.size == 0
        assert lst.index_of(1) == -1
        assert list(lst.iter_values()) == []
        with pytest.raises(IndexError):
            lst.get(0)

    def test_minimal_footprint(self, vm):
        triple = EmptyListImpl(vm).adt_footprint()
        assert triple.live == vm.model.object_size()
        assert triple.core == 0


class TestIntArray:
    def test_stores_ints_unboxed(self, vm):
        arr = IntArrayImpl(vm)
        arr.add(42)
        assert arr.get(0) == 42
        # No Box objects were allocated.
        assert arr.boxes.box_count == 0

    def test_rejects_non_ints(self, vm):
        arr = IntArrayImpl(vm)
        with pytest.raises(TypeError):
            arr.add("text")
        with pytest.raises(TypeError):
            arr.add(True)  # bool is not an int element

    def test_int_array_beats_boxed_list(self, vm):
        """The point of IntArray: 4 bytes/slot and no boxes."""
        boxed = ArrayListImpl(vm, initial_capacity=10)
        unboxed = IntArrayImpl(vm, initial_capacity=10)
        for i in range(10):
            boxed.add(i)
            unboxed.add(i)
        boxed_total = (boxed.adt_footprint().live
                       + boxed.boxes.box_count * vm.model.box_size())
        assert unboxed.adt_footprint().live < boxed_total

    def test_list_semantics(self, vm):
        arr = IntArrayImpl(vm)
        for i in (5, 7, 9):
            arr.add(i)
        arr.add_at(1, 6)
        assert arr.peek_values() == [5, 6, 7, 9]
        assert arr.remove_at(3) == 9
        assert arr.index_of(7) == 2
        assert arr.set_at(0, 4) == 5
        arr.clear()
        assert arr.size == 0

    def test_growth(self, vm):
        arr = IntArrayImpl(vm, initial_capacity=2)
        for i in range(5):
            arr.add(i)
        assert arr.capacity >= 5
        assert arr.peek_values() == [0, 1, 2, 3, 4]

    def test_footprint_uses_int_slots(self, vm):
        arr = IntArrayImpl(vm, initial_capacity=8)
        for i in range(4):
            arr.add(i)
        triple = arr.adt_footprint()
        anchor = vm.model.object_size(ref_fields=1, int_fields=2)
        assert triple.live == anchor + vm.model.int_array_size(8)
        assert triple.used == anchor + vm.model.align(
            vm.model.array_header_bytes + 4 * vm.model.int_bytes)
