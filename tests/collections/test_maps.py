"""Map implementations: hash/array semantics and footprints."""

import pytest

from repro.collections.maps import (ArrayMapImpl, HashMapImpl, LazyMapImpl,
                                    LinkedHashMapImpl, SizeAdaptingMapImpl)


@pytest.fixture(params=[HashMapImpl, LinkedHashMapImpl, LazyMapImpl,
                        ArrayMapImpl, SizeAdaptingMapImpl])
def any_map(request, vm):
    return request.param(vm)


class TestMapSemantics:
    def test_put_get(self, any_map):
        assert any_map.put("k", 1) is None
        assert any_map.get("k") == 1
        assert any_map.get("missing") is None

    def test_put_replaces_and_returns_old(self, any_map):
        any_map.put("k", 1)
        assert any_map.put("k", 2) == 1
        assert any_map.get("k") == 2
        assert any_map.size == 1

    def test_remove_key(self, any_map):
        any_map.put("k", 1)
        assert any_map.remove_key("k") == 1
        assert any_map.remove_key("k") is None
        assert any_map.size == 0

    def test_contains_key_and_value(self, any_map):
        any_map.put("k", "v")
        assert any_map.contains_key("k")
        assert not any_map.contains_key("v")
        assert any_map.contains_value("v")
        assert not any_map.contains_value("k")

    def test_clear(self, any_map):
        for i in range(5):
            any_map.put(i, i)
        any_map.clear()
        assert any_map.size == 0
        assert any_map.get(0) is None

    def test_iter_items_covers_all(self, any_map):
        expected = {i: i * 10 for i in range(20)}
        for key, value in expected.items():
            any_map.put(key, value)
        assert dict(any_map.iter_items()) == expected
        assert sorted(any_map.iter_keys()) == sorted(expected)
        assert sorted(any_map.iter_values()) == sorted(expected.values())

    def test_heap_object_keys_by_identity(self, any_map, vm):
        a, b = vm.allocate_data("K"), vm.allocate_data("K")
        any_map.put(a, "va")
        assert any_map.get(a) == "va"
        assert any_map.get(b) is None

    def test_footprint_invariant_under_mixed_ops(self, any_map):
        for i in range(25):
            any_map.put(i, i)
            if i % 3 == 0:
                any_map.remove_key(i // 2)
            triple = any_map.adt_footprint()
            assert triple.live >= triple.used >= triple.core >= 0


class TestHashMap:
    def test_default_capacity_and_resize(self, vm):
        mapping = HashMapImpl(vm)
        assert mapping.capacity == 16
        for i in range(13):  # > 16 * 0.75
            mapping.put(i, i)
        assert mapping.capacity == 32

    def test_entry_bytes_are_the_dominant_overhead(self, vm):
        """Section 2.3: shrinking initial capacity cannot fix HashMap
        bloat because each entry object alone is 24 bytes."""
        tiny = HashMapImpl(vm, initial_capacity=1)
        for i in range(8):
            tiny.put(i, i)
        triple = tiny.adt_footprint()
        entry_bytes = 8 * vm.model.hash_entry_size()
        assert entry_bytes > triple.live * 0.4

    def test_values_referenced_from_entries(self, vm):
        mapping = HashMapImpl(vm)
        value = vm.allocate_data("V")
        mapping.put("k", value)
        entry_objs = [vm.heap.get(i) for i in mapping.adt_internal_ids()
                      if vm.heap.get(i).type_name == "HashMap$Entry"]
        assert len(entry_objs) == 1
        assert value.obj_id in entry_objs[0].refs

    def test_replacing_value_swaps_entry_ref(self, vm):
        mapping = HashMapImpl(vm)
        old = vm.allocate_data("V")
        new = vm.allocate_data("V")
        mapping.put("k", old)
        mapping.put("k", new)
        entry = next(vm.heap.get(i) for i in mapping.adt_internal_ids()
                     if vm.heap.get(i).type_name == "HashMap$Entry")
        assert new.obj_id in entry.refs
        assert old.obj_id not in entry.refs


class TestLinkedHashMap:
    def test_insertion_order(self, vm):
        mapping = LinkedHashMapImpl(vm)
        for key in (9, 1, 5):
            mapping.put(key, key)
        assert [k for k, _ in mapping.iter_items()] == [9, 1, 5]

    def test_heavier_than_hash_map(self, vm):
        plain = HashMapImpl(vm, initial_capacity=16)
        linked = LinkedHashMapImpl(vm, initial_capacity=16)
        for i in range(8):
            plain.put(i, i)
            linked.put(i, i)
        assert linked.adt_footprint().live > plain.adt_footprint().live


class TestLazyMap:
    def test_no_table_until_put(self, vm):
        lazy = LazyMapImpl(vm)
        assert lazy.capacity == 0
        assert lazy.get("x") is None
        assert not lazy.contains_key("x")
        assert lazy.remove_key("x") is None

    def test_empty_lazy_map_beats_hash_map(self, vm):
        """The FindBugs fix: lazily allocated maps cost only the anchor
        while they stay empty."""
        assert (LazyMapImpl(vm).adt_footprint().live
                < HashMapImpl(vm).adt_footprint().live)

    def test_behaves_normally_once_used(self, vm):
        lazy = LazyMapImpl(vm)
        lazy.put("k", "v")
        assert lazy.capacity == 16
        assert lazy.get("k") == "v"


class TestArrayMap:
    def test_interleaved_array_layout(self, vm):
        mapping = ArrayMapImpl(vm, initial_capacity=4)
        internals = [vm.heap.get(i) for i in mapping.adt_internal_ids()]
        assert len(internals) == 1
        array = internals[0]
        assert array.type_name == "Object[]"
        assert array.size == vm.model.ref_array_size(8)  # 2 slots per pair

    def test_no_entry_objects(self, vm):
        mapping = ArrayMapImpl(vm)
        for i in range(4):
            mapping.put(i, i)
        types = {vm.heap.get(i).type_name
                 for i in mapping.adt_internal_ids()}
        assert types == {"Object[]"}

    def test_small_array_map_beats_hash_map(self, vm):
        """The TVLA replacement: a 5-entry ArrayMap is far smaller than a
        5-entry HashMap."""
        hash_map = HashMapImpl(vm)
        array_map = ArrayMapImpl(vm)
        for i in range(5):
            hash_map.put(i, i)
            array_map.put(i, i)
        assert (array_map.adt_footprint().live
                < 0.5 * hash_map.adt_footprint().live)

    def test_growth(self, vm):
        mapping = ArrayMapImpl(vm, initial_capacity=2)
        for i in range(5):
            mapping.put(i, i)
        assert mapping.capacity >= 5
        assert mapping.get(4) == 4

    def test_remove_compacts(self, vm):
        mapping = ArrayMapImpl(vm)
        for i in range(3):
            mapping.put(i, i * 10)
        assert mapping.remove_key(1) == 10
        assert mapping.peek_items() == [(0, 0), (2, 20)]


class TestSizeAdaptingMap:
    def test_conversion_at_threshold(self, vm):
        hybrid = SizeAdaptingMapImpl(vm, conversion_threshold=3)
        for i in range(3):
            hybrid.put(i, i)
        assert not hybrid.is_hashed
        hybrid.put(3, 3)
        assert hybrid.is_hashed
        assert all(hybrid.get(i) == i for i in range(4))

    def test_default_threshold_is_sixteen(self, vm):
        """Section 2.3: TVLA's best conversion bound was 16."""
        assert SizeAdaptingMapImpl(vm).conversion_threshold == 16

    def test_small_stays_array_shaped(self, vm):
        hybrid = SizeAdaptingMapImpl(vm, conversion_threshold=16)
        hash_map = HashMapImpl(vm)
        for i in range(5):
            hybrid.put(i, i)
            hash_map.put(i, i)
        assert hybrid.adt_footprint().live < hash_map.adt_footprint().live

    def test_replacement_put_does_not_convert(self, vm):
        hybrid = SizeAdaptingMapImpl(vm, conversion_threshold=2)
        hybrid.put("k", 1)
        for i in range(10):
            hybrid.put("k", i)
        assert not hybrid.is_hashed
