"""The open-addressing map and the paper's hash-quality caveat."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.collections.base import CollectionKind
from repro.collections.maps import HashMapImpl
from repro.collections.open_addressing import OpenAddressingMapImpl
from repro.collections.registry import ImplementationRegistry
from repro.runtime.vm import RuntimeEnvironment


class TestSemantics:
    def test_put_get_remove(self, vm):
        mapping = OpenAddressingMapImpl(vm)
        assert mapping.put("k", 1) is None
        assert mapping.put("k", 2) == 1
        assert mapping.get("k") == 2
        assert mapping.contains_key("k")
        assert mapping.remove_key("k") == 2
        assert mapping.get("k") is None
        assert mapping.size == 0

    def test_tombstones_do_not_break_probe_chains(self, vm):
        """Removing a key in the middle of a cluster must not hide keys
        probed past it."""
        from repro.collections.base import element_hash
        mapping = OpenAddressingMapImpl(vm, initial_capacity=64)
        target = element_hash(0) & 63
        cluster = []
        candidate = 0
        while len(cluster) < 3:
            if element_hash(candidate) & 63 == target:
                cluster.append(candidate)
            candidate += 1
        for key in cluster:
            mapping.put(key, key)
        mapping.remove_key(cluster[0])
        assert mapping.get(cluster[2]) == cluster[2]
        # Reinsertion reuses the tombstone.
        mapping.put(cluster[0], "back")
        assert mapping.get(cluster[0]) == "back"

    def test_resize_preserves_contents(self, vm):
        mapping = OpenAddressingMapImpl(vm, initial_capacity=4)
        expected = {i: i * 2 for i in range(40)}
        for key, value in expected.items():
            mapping.put(key, value)
        assert dict(mapping.iter_items()) == expected
        assert mapping.capacity >= 80  # load factor 0.5

    def test_clear(self, vm):
        mapping = OpenAddressingMapImpl(vm)
        for i in range(5):
            mapping.put(i, i)
        mapping.clear()
        assert mapping.size == 0
        assert mapping.peek_items() == []

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=st.lists(st.tuples(
        st.sampled_from(["put", "remove", "get"]),
        st.integers(-6, 6), st.integers(-6, 6)), max_size=40))
    def test_matches_python_dict(self, ops):
        vm = RuntimeEnvironment(gc_threshold_bytes=None)
        mapping = OpenAddressingMapImpl(vm)
        reference = {}
        for name, key, value in ops:
            if name == "put":
                assert mapping.put(key, value) == reference.get(key)
                reference[key] = value
            elif name == "remove":
                assert mapping.remove_key(key) == reference.pop(key, None)
            else:
                assert mapping.get(key) == reference.get(key)
            triple = mapping.adt_footprint()
            assert triple.live >= triple.used >= triple.core >= 0
        assert dict(mapping.peek_items()) == reference


class TestTheTroveTradeoff:
    def test_no_entry_objects(self, vm):
        mapping = OpenAddressingMapImpl(vm)
        for i in range(6):
            mapping.put(i, i)
        internals = [vm.heap.get(i) for i in mapping.adt_internal_ids()]
        assert [obj.type_name for obj in internals] == ["Object[]"]

    def test_smaller_than_chained_map_at_size(self, vm):
        chained = HashMapImpl(vm, initial_capacity=64)
        open_map = OpenAddressingMapImpl(vm, initial_capacity=64)
        for i in range(30):
            chained.put(i, i)
            open_map.put(i, i)
        assert (open_map.adt_footprint().live
                < chained.adt_footprint().live)

    def test_degenerate_hash_is_disastrous_for_open_addressing(self, vm):
        """The paper's caveat, measured: under a constant hash function
        the open-addressing map degrades far more than the chained map
        (whose chains at least stay bucket-local)."""
        bad_hash = lambda value: 7

        def lookup_cost(mapping):
            start = vm.now
            for key in range(80):
                mapping.get(key)
            return vm.now - start

        open_map = OpenAddressingMapImpl(vm, initial_capacity=512,
                                         hash_fn=bad_hash)
        for i in range(80):
            open_map.put(i, i)
        good_map = OpenAddressingMapImpl(vm, initial_capacity=512)
        for i in range(80):
            good_map.put(i, i)

        degenerate = lookup_cost(open_map)
        healthy = lookup_cost(good_map)
        assert degenerate > 5 * healthy

    def test_registry_opt_in(self, vm):
        """Not registered by default; a user can opt in (section 4.2)."""
        from repro.collections.registry import default_registry
        assert not default_registry().supports("OpenHashMap",
                                               CollectionKind.MAP)
        registry = ImplementationRegistry()
        registry.register("OpenHashMap", OpenAddressingMapImpl,
                          [CollectionKind.MAP])
        impl = registry.create(vm, "OpenHashMap", CollectionKind.MAP)
        assert isinstance(impl, OpenAddressingMapImpl)
