"""The primitive-array family ("Similar for other primitives")."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collections.base import CollectionKind
from repro.collections.lists import ArrayListImpl
from repro.collections.primitive_arrays import (BoolArrayImpl,
                                                DoubleArrayImpl,
                                                LongArrayImpl,
                                                make_primitive_array_impl)
from repro.collections.registry import default_registry
from repro.runtime.vm import RuntimeEnvironment


class TestFamilyMembers:
    def test_long_array_stores_ints(self, vm):
        arr = LongArrayImpl(vm)
        arr.add(1 << 40)
        assert arr.get(0) == 1 << 40
        with pytest.raises(TypeError):
            arr.add(1.5)
        with pytest.raises(TypeError):
            arr.add(True)

    def test_double_array_stores_reals(self, vm):
        arr = DoubleArrayImpl(vm)
        arr.add(2.5)
        arr.add(3)        # Integral is Real: stored as float
        assert arr.peek_values() == [2.5, 3.0]
        with pytest.raises(TypeError):
            arr.add("text")

    def test_bool_array(self, vm):
        arr = BoolArrayImpl(vm)
        arr.add(True)
        arr.add(False)
        assert arr.peek_values() == [True, False]
        with pytest.raises(TypeError):
            arr.add(1)

    def test_slot_widths_drive_footprint(self, vm):
        model = vm.model
        wide = LongArrayImpl(vm, initial_capacity=16)
        narrow = BoolArrayImpl(vm, initial_capacity=16)
        assert (wide.adt_footprint().live - wide.anchor.size
                == model.align(model.array_header_bytes + 16 * 8))
        assert (narrow.adt_footprint().live - narrow.anchor.size
                == model.align(model.array_header_bytes + 16 * 1))

    def test_no_boxing(self, vm):
        arr = DoubleArrayImpl(vm)
        for i in range(10):
            arr.add(float(i))
        assert arr.boxes.box_count == 0

    def test_unboxed_beats_boxed_list(self, vm):
        boxed = ArrayListImpl(vm, initial_capacity=16)
        unboxed = LongArrayImpl(vm, initial_capacity=16)
        for i in range(16):
            boxed.add(i)
            unboxed.add(i)
        boxed_total = (boxed.adt_footprint().live
                       + boxed.boxes.box_count * vm.model.box_size())
        assert unboxed.adt_footprint().live < boxed_total


class TestListSemantics:
    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(st.tuples(
        st.sampled_from(["add", "remove", "set", "insert"]),
        st.integers(-5, 5)), max_size=30))
    def test_long_array_matches_python_list(self, ops):
        vm = RuntimeEnvironment(gc_threshold_bytes=None)
        arr = LongArrayImpl(vm)
        reference = []
        for name, value in ops:
            if name == "add":
                arr.add(value)
                reference.append(value)
            elif name == "remove" and reference:
                index = abs(value) % len(reference)
                assert arr.remove_at(index) == reference.pop(index)
            elif name == "set" and reference:
                index = abs(value) % len(reference)
                assert arr.set_at(index, value) == reference[index]
                reference[index] = value
            elif name == "insert":
                index = abs(value) % (len(reference) + 1)
                arr.add_at(index, value)
                reference.insert(index, value)
            triple = arr.adt_footprint()
            assert triple.live >= triple.used >= triple.core >= 0
        assert arr.peek_values() == reference

    def test_index_of_and_clear(self, vm):
        arr = LongArrayImpl(vm)
        for i in (5, 7, 9):
            arr.add(i)
        assert arr.index_of(7) == 1
        assert arr.index_of(8) == -1
        arr.clear()
        assert arr.size == 0


class TestFactory:
    def test_custom_member(self, vm):
        ShortArray = make_primitive_array_impl(
            "ShortArray", 2,
            lambda v: int(v) if -32768 <= int(v) < 32768 else
            (_ for _ in ()).throw(TypeError("out of short range")))
        arr = ShortArray(vm)
        arr.add(100)
        assert arr.get(0) == 100
        assert arr.ARRAY_TYPE_NAME == "short[]"

    def test_invalid_slot_width(self):
        with pytest.raises(ValueError):
            make_primitive_array_impl("X", 0, int)

    def test_registered_in_default_registry(self, vm):
        registry = default_registry()
        for name in ("LongArray", "DoubleArray", "BoolArray"):
            assert registry.supports(name, CollectionKind.LIST)
        impl = registry.create(vm, "LongArray", CollectionKind.LIST)
        assert impl.IMPL_NAME == "LongArray"
