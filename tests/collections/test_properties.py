"""Property-based conformance: every implementation must track the
reference semantics of Python's list/set/dict under arbitrary operation
sequences, and every footprint must satisfy live >= used >= core.

This is the testable form of the paper's interchangeability requirement:
"the different implementations have the same logical behavior"
(section 1).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.collections.lists import (ArrayListImpl, LazyArrayListImpl,
                                     LinkedListImpl)
from repro.collections.maps import (ArrayMapImpl, HashMapImpl, LazyMapImpl,
                                    LinkedHashMapImpl, SizeAdaptingMapImpl)
from repro.collections.sets import (ArraySetImpl, HashSetImpl, LazySetImpl,
                                    LinkedHashSetImpl, SizeAdaptingSetImpl)
from repro.runtime.vm import RuntimeEnvironment

_SETTINGS = settings(max_examples=60, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_values = st.integers(min_value=-8, max_value=8)

_list_ops = st.lists(st.one_of(
    st.tuples(st.just("add"), _values),
    st.tuples(st.just("add_at"), _values),
    st.tuples(st.just("remove_at"), _values),
    st.tuples(st.just("remove_value"), _values),
    st.tuples(st.just("set_at"), _values),
    st.tuples(st.just("get"), _values),
    st.tuples(st.just("index_of"), _values),
    st.tuples(st.just("clear"), _values),
), max_size=40)


def _fresh_vm():
    return RuntimeEnvironment(gc_threshold_bytes=None)


@pytest.mark.parametrize("impl_class",
                         [ArrayListImpl, LazyArrayListImpl, LinkedListImpl])
class TestListConformance:
    @_SETTINGS
    @given(ops=_list_ops)
    def test_matches_python_list(self, impl_class, ops):
        vm = _fresh_vm()
        impl = impl_class(vm)
        reference = []
        for name, value in ops:
            if name == "add":
                impl.add(value)
                reference.append(value)
            elif name == "add_at":
                index = abs(value) % (len(reference) + 1)
                impl.add_at(index, value)
                reference.insert(index, value)
            elif name == "remove_at" and reference:
                index = abs(value) % len(reference)
                assert impl.remove_at(index) == reference.pop(index)
            elif name == "remove_value":
                expected = value in reference
                if expected:
                    reference.remove(value)
                assert impl.remove_value(value) == expected
            elif name == "set_at" and reference:
                index = abs(value) % len(reference)
                assert impl.set_at(index, value) == reference[index]
                reference[index] = value
            elif name == "get" and reference:
                index = abs(value) % len(reference)
                assert impl.get(index) == reference[index]
            elif name == "index_of":
                expected = reference.index(value) if value in reference else -1
                assert impl.index_of(value) == expected
            elif name == "clear":
                impl.clear()
                reference.clear()
            assert impl.size == len(reference)
            triple = impl.adt_footprint()
            assert triple.live >= triple.used >= triple.core >= 0
        assert impl.peek_values() == reference
        assert list(impl.iter_values()) == reference


_set_ops = st.lists(st.one_of(
    st.tuples(st.just("add"), _values),
    st.tuples(st.just("remove"), _values),
    st.tuples(st.just("contains"), _values),
    st.tuples(st.just("clear"), _values),
), max_size=40)


@pytest.mark.parametrize("impl_class",
                         [HashSetImpl, LinkedHashSetImpl, LazySetImpl,
                          ArraySetImpl, SizeAdaptingSetImpl])
class TestSetConformance:
    @_SETTINGS
    @given(ops=_set_ops)
    def test_matches_python_set(self, impl_class, ops):
        vm = _fresh_vm()
        impl = impl_class(vm)
        reference = set()
        for name, value in ops:
            if name == "add":
                assert impl.add(value) == (value not in reference)
                reference.add(value)
            elif name == "remove":
                assert impl.remove_value(value) == (value in reference)
                reference.discard(value)
            elif name == "contains":
                assert impl.contains(value) == (value in reference)
            elif name == "clear":
                impl.clear()
                reference.clear()
            assert impl.size == len(reference)
            triple = impl.adt_footprint()
            assert triple.live >= triple.used >= triple.core >= 0
        assert set(impl.peek_values()) == reference


_map_ops = st.lists(st.one_of(
    st.tuples(st.just("put"), _values, _values),
    st.tuples(st.just("remove"), _values, _values),
    st.tuples(st.just("get"), _values, _values),
    st.tuples(st.just("contains"), _values, _values),
    st.tuples(st.just("clear"), _values, _values),
), max_size=40)


@pytest.mark.parametrize("impl_class",
                         [HashMapImpl, LinkedHashMapImpl, LazyMapImpl,
                          ArrayMapImpl, SizeAdaptingMapImpl])
class TestMapConformance:
    @_SETTINGS
    @given(ops=_map_ops)
    def test_matches_python_dict(self, impl_class, ops):
        vm = _fresh_vm()
        impl = impl_class(vm)
        reference = {}
        for name, key, value in ops:
            if name == "put":
                assert impl.put(key, value) == reference.get(key)
                reference[key] = value
            elif name == "remove":
                assert impl.remove_key(key) == reference.pop(key, None)
            elif name == "get":
                assert impl.get(key) == reference.get(key)
            elif name == "contains":
                assert impl.contains_key(key) == (key in reference)
            elif name == "clear":
                impl.clear()
                reference.clear()
            assert impl.size == len(reference)
            triple = impl.adt_footprint()
            assert triple.live >= triple.used >= triple.core >= 0
        assert dict(impl.peek_items()) == reference


class TestBoxRefcountInvariant:
    @_SETTINGS
    @given(ops=_list_ops)
    def test_boxes_match_distinct_primitives(self, ops):
        """After any operation sequence, the box pool holds exactly one
        box per distinct primitive value stored."""
        vm = _fresh_vm()
        impl = ArrayListImpl(vm)
        reference = []
        for name, value in ops:
            if name == "add":
                impl.add(value)
                reference.append(value)
            elif name == "remove_at" and reference:
                index = abs(value) % len(reference)
                impl.remove_at(index)
                reference.pop(index)
            elif name == "clear":
                impl.clear()
                reference.clear()
            elif name == "set_at" and reference:
                index = abs(value) % len(reference)
                impl.set_at(index, value)
                reference[index] = value
        assert impl.boxes.box_count == len(set(reference))
