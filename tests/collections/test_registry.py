"""Implementation registry: lookup, kinds, extension."""

import pytest

from repro.collections.base import CollectionKind
from repro.collections.lists import ArrayListImpl
from repro.collections.registry import (ImplementationRegistry,
                                        default_registry)


class TestDefaultRegistry:
    def test_known_source_types(self):
        registry = default_registry()
        known = set(registry.known_source_types())
        assert {"ArrayList", "LinkedList", "HashMap", "HashSet",
                "List", "Set", "Map"} <= known

    def test_defaults_match_java(self):
        registry = default_registry()
        assert registry.default_impl_for("HashMap") == "HashMap"
        assert registry.default_impl_for("List") == "ArrayList"
        assert registry.default_impl_for("Set") == "HashSet"

    def test_kind_of(self):
        registry = default_registry()
        assert registry.kind_of("ArrayList") is CollectionKind.LIST
        assert registry.kind_of("HashMap") is CollectionKind.MAP
        assert registry.kind_of("HashSet") is CollectionKind.SET

    def test_unknown_source_type(self):
        registry = default_registry()
        with pytest.raises(KeyError):
            registry.default_impl_for("TreeMap")
        with pytest.raises(KeyError):
            registry.kind_of("TreeMap")

    def test_every_paper_implementation_is_registered(self):
        """Section 4.2's implementation list must be available."""
        registry = default_registry()
        lists = set(registry.names_for_kind(CollectionKind.LIST))
        sets_ = set(registry.names_for_kind(CollectionKind.SET))
        maps = set(registry.names_for_kind(CollectionKind.MAP))
        assert {"ArrayList", "LinkedList", "LazyArrayList", "IntArray",
                "SingletonList", "EmptyList"} <= lists
        assert {"HashSet", "LazySet", "ArraySet", "SizeAdaptingSet",
                "LinkedHashSet"} <= sets_
        assert {"HashMap", "ArrayMap", "LazyMap", "SizeAdaptingMap",
                "LinkedHashMap"} <= maps

    def test_linked_hash_set_backs_both_kinds(self):
        """Table 2's ArrayList->LinkedHashSet replacement requires a
        list-capable hash implementation."""
        registry = default_registry()
        assert registry.supports("LinkedHashSet", CollectionKind.SET)
        assert registry.supports("LinkedHashSet", CollectionKind.LIST)

    def test_create_dispatches_by_kind(self, vm):
        registry = default_registry()
        as_set = registry.create(vm, "LinkedHashSet", CollectionKind.SET)
        as_list = registry.create(vm, "LinkedHashSet", CollectionKind.LIST)
        assert type(as_set).__name__ == "LinkedHashSetImpl"
        assert type(as_list).__name__ == "HashBackedListImpl"

    def test_create_unknown_name(self, vm):
        with pytest.raises(KeyError):
            default_registry().create(vm, "TreeList", CollectionKind.LIST)

    def test_create_wrong_kind(self, vm):
        with pytest.raises(KeyError):
            default_registry().create(vm, "ArrayMap", CollectionKind.LIST)


class _CustomList(ArrayListImpl):
    IMPL_NAME = "CustomList"


class TestExtension:
    def test_user_registration(self, vm):
        """'we allow the user to add her own implementations'."""
        registry = ImplementationRegistry()
        registry.register("CustomList", _CustomList, [CollectionKind.LIST])
        registry.register_source_type("CustomList", CollectionKind.LIST,
                                      "CustomList")
        impl = registry.create(vm, "CustomList", CollectionKind.LIST)
        assert isinstance(impl, _CustomList)
        assert registry.default_impl_for("CustomList") == "CustomList"

    def test_registration_requires_a_kind(self):
        registry = ImplementationRegistry()
        with pytest.raises(ValueError):
            registry.register("X", _CustomList, [])

    def test_source_type_requires_known_impl(self):
        registry = ImplementationRegistry()
        with pytest.raises(KeyError):
            registry.register_source_type("X", CollectionKind.LIST, "Nope")

    def test_capacity_and_context_forwarded(self, vm):
        registry = default_registry()
        impl = registry.create(vm, "ArrayList", CollectionKind.LIST,
                               initial_capacity=7, context_id=42)
        assert impl.capacity == 7
        assert impl.context_id == 42
