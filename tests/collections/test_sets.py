"""Set implementations: hash/array semantics and footprints."""

import pytest

from repro.collections.sets import (ArraySetImpl, HashSetImpl, LazySetImpl,
                                    LinkedHashSetImpl, SizeAdaptingSetImpl)


@pytest.fixture(params=[HashSetImpl, LinkedHashSetImpl, LazySetImpl,
                        ArraySetImpl, SizeAdaptingSetImpl])
def any_set(request, vm):
    return request.param(vm)


class TestSetSemantics:
    """Behaviour shared by every interchangeable set implementation --
    the paper's requirement that alternatives 'have the same logical
    behavior'."""

    def test_add_returns_newness(self, any_set):
        assert any_set.add("a") is True
        assert any_set.add("a") is False
        assert any_set.size == 1

    def test_contains(self, any_set):
        any_set.add("x")
        assert any_set.contains("x")
        assert not any_set.contains("y")

    def test_remove(self, any_set):
        any_set.add("x")
        assert any_set.remove_value("x") is True
        assert any_set.remove_value("x") is False
        assert any_set.size == 0

    def test_clear(self, any_set):
        for value in "abc":
            any_set.add(value)
        any_set.clear()
        assert any_set.size == 0
        assert not any_set.contains("a")

    def test_no_duplicates_in_iteration(self, any_set):
        for value in ("a", "b", "a", "c", "b"):
            any_set.add(value)
        assert sorted(any_set.iter_values()) == ["a", "b", "c"]

    def test_many_elements(self, any_set):
        for i in range(100):
            any_set.add(i)
        assert any_set.size == 100
        assert all(any_set.contains(i) for i in range(100))
        assert not any_set.contains(100)

    def test_heap_object_elements_by_identity(self, any_set, vm):
        a = vm.allocate_data("Rec")
        b = vm.allocate_data("Rec")
        any_set.add(a)
        assert any_set.contains(a)
        assert not any_set.contains(b)

    def test_footprint_invariant(self, any_set):
        for i in range(20):
            any_set.add(i)
            triple = any_set.adt_footprint()
            assert triple.live >= triple.used >= triple.core >= 0


class TestHashSet:
    def test_entry_objects_on_heap(self, vm):
        hash_set = HashSetImpl(vm)
        hash_set.add("a")
        internals = [vm.heap.get(i) for i in hash_set.adt_internal_ids()]
        type_names = {obj.type_name for obj in internals}
        assert "HashMap$Entry" in type_names
        assert "Object[]" in type_names

    def test_resize_doubles_table(self, vm):
        hash_set = HashSetImpl(vm, initial_capacity=4)
        for i in range(5):
            hash_set.add(i)
        assert hash_set.capacity == 8

    def test_footprint_includes_entries_and_slack(self, vm):
        hash_set = HashSetImpl(vm, initial_capacity=16)
        for i in range(2):
            hash_set.add(i)
        triple = hash_set.adt_footprint()
        # 24 bytes per entry (section 2.3) are part of live and used.
        assert triple.live - triple.slack == triple.used
        assert triple.slack > 0  # 14 unused table slots

    def test_iteration_order_deterministic(self, vm):
        a = HashSetImpl(vm)
        b = HashSetImpl(vm)
        for i in range(10):
            a.add(i)
            b.add(i)
        assert list(a.iter_values()) == list(b.iter_values())


class TestLinkedHashSet:
    def test_insertion_order_iteration(self, vm):
        linked = LinkedHashSetImpl(vm)
        for value in (3, 1, 2):
            linked.add(value)
        assert list(linked.iter_values()) == [3, 1, 2]

    def test_heavier_entries_than_hash_set(self, vm):
        plain = HashSetImpl(vm, initial_capacity=16)
        linked = LinkedHashSetImpl(vm, initial_capacity=16)
        for i in range(8):
            plain.add(i)
            linked.add(i)
        assert linked.adt_footprint().live > plain.adt_footprint().live

    def test_iteration_skips_empty_buckets(self, vm):
        """The linked variant's iteration cost is independent of table
        capacity -- its advantage for sparse sets."""
        sparse_linked = LinkedHashSetImpl(vm, initial_capacity=256)
        sparse_plain = HashSetImpl(vm, initial_capacity=256)
        sparse_linked.add(1)
        sparse_plain.add(1)
        start = vm.now
        list(sparse_linked.iter_values())
        linked_cost = vm.now - start
        start = vm.now
        list(sparse_plain.iter_values())
        plain_cost = vm.now - start
        assert linked_cost < plain_cost


class TestLazySet:
    def test_no_table_until_update(self, vm):
        lazy = LazySetImpl(vm)
        assert lazy.capacity == 0
        assert not lazy.contains("x")  # read on unallocated table
        assert list(lazy.adt_internal_ids()) == []

    def test_first_add_allocates(self, vm):
        lazy = LazySetImpl(vm)
        lazy.add("x")
        assert lazy.capacity > 0
        assert lazy.contains("x")

    def test_empty_lazy_smaller_than_eager(self, vm):
        assert (LazySetImpl(vm).adt_footprint().live
                < HashSetImpl(vm).adt_footprint().live)


class TestArraySet:
    def test_no_per_element_objects(self, vm):
        array_set = ArraySetImpl(vm, initial_capacity=4)
        array_set.add("a")
        internals = [vm.heap.get(i) for i in array_set.adt_internal_ids()]
        assert all(obj.type_name == "Object[]" for obj in internals)

    def test_smaller_than_hash_set_when_small(self, vm):
        """Table 2: 'ArraySet more efficient than an HashSet' for small
        sizes."""
        hash_set = HashSetImpl(vm)
        array_set = ArraySetImpl(vm)
        for i in range(4):
            hash_set.add(i)
            array_set.add(i)
        assert array_set.adt_footprint().live < hash_set.adt_footprint().live

    def test_contains_faster_than_hashing_when_tiny(self, vm):
        hash_set = HashSetImpl(vm)
        array_set = ArraySetImpl(vm)
        hash_set.add("k")
        array_set.add("k")
        start = vm.now
        array_set.contains("k")
        scan_cost = vm.now - start
        start = vm.now
        hash_set.contains("k")
        hash_cost = vm.now - start
        assert scan_cost < hash_cost

    def test_contains_slower_than_hashing_when_large(self, vm):
        """The crossover that motivates SizeAdaptingSet."""
        hash_set = HashSetImpl(vm)
        array_set = ArraySetImpl(vm)
        for i in range(200):
            hash_set.add(i)
            array_set.add(i)
        start = vm.now
        array_set.contains(199)
        scan_cost = vm.now - start
        start = vm.now
        hash_set.contains(199)
        hash_cost = vm.now - start
        assert hash_cost < scan_cost


class TestSizeAdaptingSet:
    def test_starts_as_array(self, vm):
        hybrid = SizeAdaptingSetImpl(vm, conversion_threshold=4)
        assert not hybrid.is_hashed
        assert hybrid.conversions == 0

    def test_converts_past_threshold(self, vm):
        hybrid = SizeAdaptingSetImpl(vm, conversion_threshold=4)
        for i in range(5):
            hybrid.add(i)
        assert hybrid.is_hashed
        assert hybrid.conversions == 1
        assert all(hybrid.contains(i) for i in range(5))

    def test_conversion_is_one_way(self, vm):
        hybrid = SizeAdaptingSetImpl(vm, conversion_threshold=2)
        for i in range(5):
            hybrid.add(i)
        for i in range(5):
            hybrid.remove_value(i)
        assert hybrid.is_hashed
        assert hybrid.conversions == 1

    def test_duplicates_do_not_trigger_conversion(self, vm):
        hybrid = SizeAdaptingSetImpl(vm, conversion_threshold=2)
        for _ in range(10):
            hybrid.add("same")
        assert not hybrid.is_hashed

    def test_invalid_threshold(self, vm):
        with pytest.raises(ValueError):
            SizeAdaptingSetImpl(vm, conversion_threshold=0)

    def test_footprint_includes_inner(self, vm):
        hybrid = SizeAdaptingSetImpl(vm, conversion_threshold=100)
        for i in range(3):
            hybrid.add(i)
        inner_ids = set(hybrid.adt_internal_ids())
        assert hybrid._inner.anchor_id in inner_ids
        assert hybrid.adt_footprint().live > hybrid._inner.adt_footprint().live

    def test_old_array_becomes_garbage_after_conversion(self, vm):
        hybrid = SizeAdaptingSetImpl(vm, conversion_threshold=2)
        hybrid.anchor and vm.add_root(hybrid.anchor)
        for i in range(3):
            hybrid.add(i)
        vm.collect()
        # Inner is now a hash set; old ArraySet anchor was swept.
        live_types = {obj.type_name for obj in vm.heap.objects()}
        assert "ArraySet" not in live_types
