"""The Chameleon wrappers: delegation, profiling, swapping, copies."""

import pytest

from repro.collections.wrappers import ChameleonList, ChameleonMap, ChameleonSet
from repro.collections.base import UnsupportedOperation
from repro.profiler.counters import Op
from repro.runtime.context import ContextKey
from repro.runtime.vm import ImplementationChoice


class TestConstruction:
    def test_default_backing_implementations(self, vm):
        assert ChameleonList(vm).impl.IMPL_NAME == "ArrayList"
        assert ChameleonSet(vm).impl.IMPL_NAME == "HashSet"
        assert ChameleonMap(vm).impl.IMPL_NAME == "HashMap"

    def test_src_type_selects_default(self, vm):
        lst = ChameleonList(vm, src_type="LinkedList")
        assert lst.impl.IMPL_NAME == "LinkedList"

    def test_explicit_impl_overrides_default(self, vm):
        mapping = ChameleonMap(vm, src_type="HashMap", impl="ArrayMap")
        assert mapping.impl.IMPL_NAME == "ArrayMap"

    def test_wrapper_heap_object_is_one_ref(self, vm):
        lst = ChameleonList(vm)
        assert lst.heap_obj.size == vm.model.object_size(ref_fields=1)
        assert lst.heap_obj.type_name == "ArrayList"
        assert lst.impl.anchor_id in lst.heap_obj.refs

    def test_wrapper_footprint_adds_wrapper_bytes(self, vm):
        lst = ChameleonList(vm)
        inner = lst.impl.adt_footprint()
        outer = lst.adt_footprint()
        assert outer.live == inner.live + lst.heap_obj.size
        assert outer.core == inner.core

    def test_unknown_src_type_rejected(self, vm):
        with pytest.raises(KeyError):
            ChameleonList(vm, src_type="Nonsense")

    def test_no_context_captured_without_instrumentation(self, vm):
        lst = ChameleonList(vm)
        assert lst.context_id is None

    def test_explicit_context(self, vm):
        key = ContextKey.synthetic("factory", "caller")
        lst = ChameleonList(vm, context=key)
        assert vm.contexts.describe(lst.context_id) == key


class TestDelegation:
    def test_list_operations(self, vm):
        lst = ChameleonList(vm)
        lst.add("a")
        lst.add_at(1, "b")
        lst.add_all(["c", "d"])
        assert lst.size() == 4
        assert lst.get(2) == "c"
        assert lst.contains("d")
        assert lst.index_of("b") == 1
        assert lst.set_at(0, "z") == "a"
        assert lst.remove_at(0) == "z"
        assert lst.remove_first() == "b"
        assert lst.remove_value("d") is True
        assert not lst.is_empty()
        lst.clear()
        assert lst.is_empty()

    def test_to_list_and_snapshot(self, vm):
        lst = ChameleonList(vm)
        lst.add_all([1, 2, 3])
        assert lst.to_list() == [1, 2, 3]
        assert lst.snapshot() == [1, 2, 3]
        assert len(lst) == 3

    def test_set_operations(self, vm):
        s = ChameleonSet(vm)
        assert s.add("a")
        assert not s.add("a")
        s.add_all(["b", "c"])
        assert s.contains("b")
        assert s.remove_value("c")
        assert s.size() == 2

    def test_map_operations(self, vm):
        m = ChameleonMap(vm)
        m.put("k", 1)
        m.put_all({"a": 2, "b": 3})
        assert m.get("a") == 2
        assert m.contains_key("b")
        assert m.contains_value(1)
        assert m.remove_key("k") == 1
        assert m.size() == 2
        assert dict(m.snapshot_items()) == {"a": 2, "b": 3}

    def test_delegation_charges_wrapper_tick(self, vm):
        lst = ChameleonList(vm)
        before = vm.now
        lst.size()
        assert vm.now - before >= vm.costs.wrapper_delegation


class TestProfiling:
    def test_operations_recorded(self, profiled_vm):
        lst = ChameleonList(profiled_vm)
        lst.add("a")
        lst.contains("a")
        lst.get(0)
        info = lst.object_info
        assert info.count(Op.ADD) == 1
        assert info.count(Op.CONTAINS) == 1
        assert info.count(Op.GET_INDEX) == 1
        assert info.max_size == 1

    def test_max_size_tracks_high_water_mark(self, profiled_vm):
        lst = ChameleonList(profiled_vm)
        for i in range(5):
            lst.add(i)
        lst.remove_at(0)
        lst.remove_at(0)
        info = lst.object_info
        assert info.max_size == 5
        assert info.final_size == 3

    def test_add_all_records_copied_on_source(self, profiled_vm):
        """Section 3.2.2: both sides of addAll are counted."""
        src = ChameleonList(profiled_vm)
        src.add("x")
        dst = ChameleonList(profiled_vm)
        dst.add_all(src)
        assert dst.object_info.count(Op.ADD_ALL) == 1
        assert src.object_info.count(Op.COPIED) == 1
        # The bulk adds do not count as individual #add on dst.
        assert dst.object_info.count(Op.ADD) == 0

    def test_copy_constructor_records_only_copied(self, profiled_vm):
        src = ChameleonList(profiled_vm)
        src.add("x")
        src_ops_before = src.object_info.total_ops
        dup = ChameleonList(profiled_vm, copy_from=src)
        assert dup.snapshot() == ["x"]
        assert src.object_info.count(Op.COPIED) == 1
        # Constructor fill is not an operation on the new collection.
        assert dup.object_info.total_ops == 0
        assert dup.object_info.max_size == 1
        assert src.object_info.total_ops == src_ops_before + 1

    def test_iterate_records_empty_iterations(self, profiled_vm):
        lst = ChameleonList(profiled_vm)
        list(lst.iterate())
        lst.add(1)
        list(lst.iterate())
        info = lst.object_info
        assert info.count(Op.ITERATE) == 2
        assert info.count(Op.ITER_EMPTY) == 1

    def test_context_captured_when_profiling(self, profiled_vm):
        lst = ChameleonList(profiled_vm)
        assert lst.context_id is not None
        key = profiled_vm.contexts.describe(lst.context_id)
        assert "test_context_captured_when_profiling" in key.render()

    def test_capture_cost_charged_when_profiling(self, profiled_vm):
        before = profiled_vm.now
        ChameleonList(profiled_vm)
        assert (profiled_vm.now - before
                >= profiled_vm.costs.stack_walk_base)

    def test_death_folds_into_context(self, profiled_vm):
        lst = ChameleonList(profiled_vm)
        lst.add(1)
        context_id = lst.context_id
        del lst
        profiled_vm.collect()
        info = profiled_vm.profiler.context_info(context_id)
        assert info.instances_dead == 1
        assert info.avg_max_size == 1.0


class TestIterators:
    def test_iterator_allocates_heap_object(self, vm):
        lst = ChameleonList(vm)
        lst.add(1)
        before = vm.heap.total_allocated_objects
        iterator = lst.iterate()
        assert vm.heap.total_allocated_objects == before + 1
        assert list(iterator) == [1]
        assert not iterator.is_shared_empty

    def test_shared_empty_iterator_skips_allocation(self, vm):
        lst = ChameleonList(vm, use_shared_empty_iterator=True)
        before = vm.heap.total_allocated_objects
        iterator = lst.iterate()
        assert vm.heap.total_allocated_objects == before
        assert iterator.is_shared_empty
        assert list(iterator) == []

    def test_map_iterators(self, vm):
        m = ChameleonMap(vm)
        m.put("k", 1)
        assert list(m.iterate_items()) == [("k", 1)]
        assert list(m.iterate_keys()) == ["k"]


class TestSwapping:
    def test_swap_preserves_list_contents(self, vm):
        lst = ChameleonList(vm)
        lst.add_all([1, 2, 3])
        lst.swap_to("LinkedList")
        assert lst.impl.IMPL_NAME == "LinkedList"
        assert lst.snapshot() == [1, 2, 3]

    def test_swap_preserves_map_contents(self, vm):
        m = ChameleonMap(vm)
        m.put_all({"a": 1, "b": 2})
        m.swap_to("ArrayMap")
        assert m.impl.IMPL_NAME == "ArrayMap"
        assert dict(m.snapshot_items()) == {"a": 1, "b": 2}

    def test_swap_updates_heap_graph(self, vm):
        lst = ChameleonList(vm)
        old_anchor = lst.impl.anchor_id
        lst.swap_to("LinkedList")
        assert old_anchor not in lst.heap_obj.refs
        assert lst.impl.anchor_id in lst.heap_obj.refs

    def test_swap_recorded_in_profile(self, profiled_vm):
        lst = ChameleonList(profiled_vm)
        lst.add(1)
        lst.swap_to("LinkedList")
        assert lst.object_info.swap_count == 1
        assert lst.object_info.impl_name == "LinkedList"

    def test_swap_to_singleton_rejects_oversized(self, vm):
        lst = ChameleonList(vm)
        lst.add_all([1, 2])
        with pytest.raises(UnsupportedOperation):
            lst.swap_to("SingletonList")


class _FixedPolicy:
    requires_runtime_capture = False

    def __init__(self, choice):
        self._choice = choice

    def choose(self, src_type, context_id):
        return self._choice


class TestPolicyIntegration:
    def test_policy_replaces_implementation(self, vm):
        vm.policy = _FixedPolicy(ImplementationChoice("ArrayMap"))
        mapping = ChameleonMap(vm, src_type="HashMap")
        assert mapping.impl.IMPL_NAME == "ArrayMap"

    def test_policy_capacity_overrides_program(self, vm):
        vm.policy = _FixedPolicy(ImplementationChoice(None,
                                                      initial_capacity=3))
        lst = ChameleonList(vm, initial_capacity=100)
        assert lst.impl.capacity == 3

    def test_policy_impl_kwargs_forwarded(self, vm):
        vm.policy = _FixedPolicy(ImplementationChoice(
            "SizeAdaptingMap", impl_kwargs={"conversion_threshold": 5}))
        mapping = ChameleonMap(vm, src_type="HashMap")
        assert mapping.impl.conversion_threshold == 5

    def test_explicit_impl_wins_over_policy(self, vm):
        vm.policy = _FixedPolicy(ImplementationChoice("ArrayMap"))
        mapping = ChameleonMap(vm, src_type="HashMap", impl="LinkedHashMap")
        assert mapping.impl.IMPL_NAME == "LinkedHashMap"


class TestFootprintCaching:
    """Wrapper-level footprint/internal-id caching, keyed on the impl's
    ``adt_footprint_token``: exact through mutations, invalidated by
    swaps, bypassed (token ``None``) for impls without a version."""

    def _fresh_triple(self, wrapper):
        inner = wrapper.impl.adt_footprint()
        return (inner.live + wrapper.heap_obj.size,
                inner.used + wrapper.heap_obj.size,
                inner.core)

    def _fresh_ids(self, wrapper):
        return [wrapper.impl.anchor_id] + list(wrapper.impl.adt_internal_ids())

    def _assert_exact(self, wrapper):
        triple = wrapper.adt_footprint()
        assert (triple.live, triple.used, triple.core) \
            == self._fresh_triple(wrapper)
        assert list(wrapper.adt_internal_ids()) == self._fresh_ids(wrapper)

    def test_hash_map_cache_exact_across_mutations(self, vm):
        mapping = ChameleonMap(vm)
        for i in range(30):
            mapping.put(f"k{i}", i)
            self._assert_exact(mapping)
        mapping.put("k3", "overwritten")      # non-structural
        self._assert_exact(mapping)
        mapping.remove_key("k0")
        self._assert_exact(mapping)
        mapping.clear()
        self._assert_exact(mapping)

    def test_cache_hit_returns_same_objects(self, vm):
        mapping = ChameleonMap(vm)
        mapping.put("a", 1)
        first = mapping.adt_footprint()
        ids = mapping.adt_internal_ids()
        assert mapping.adt_footprint() is first
        assert mapping.adt_internal_ids() is ids
        mapping.put("b", 2)
        assert mapping.adt_footprint() is not first

    def test_swap_invalidates_the_cache(self, vm):
        mapping = ChameleonMap(vm)
        for i in range(4):
            mapping.put(i, i)
        self._assert_exact(mapping)
        mapping.swap_to("ArrayMap")
        assert mapping.impl.adt_footprint_token() is None
        self._assert_exact(mapping)
        mapping.swap_to("HashMap")
        self._assert_exact(mapping)

    def test_tokenless_impl_recomputes_every_time(self, vm):
        lst = ChameleonList(vm)  # ArrayList: no version token
        assert lst.impl.adt_footprint_token() is None
        lst.add_all([1, 2, 3])
        before = lst.adt_footprint()
        assert lst.adt_footprint() is not before  # no caching
        self._assert_exact(lst)

    def test_size_adapting_token_delegates_to_inner(self, vm):
        mapping = ChameleonMap(vm, impl="SizeAdaptingMap")
        assert mapping.impl.adt_footprint_token() is None  # array inner
        for i in range(40):  # force conversion to the hash inner
            mapping.put(i, i)
        assert mapping.impl.adt_footprint_token() is not None
        self._assert_exact(mapping)
