"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.memory.layout import MemoryModel
from repro.profiler.profiler import SemanticProfiler
from repro.runtime.vm import RuntimeEnvironment


@pytest.fixture
def model() -> MemoryModel:
    """The paper's 32-bit memory model."""
    return MemoryModel.for_32bit()


@pytest.fixture
def vm() -> RuntimeEnvironment:
    """A plain (unprofiled) runtime with periodic GC disabled, so tests
    control collection timing explicitly."""
    return RuntimeEnvironment(gc_threshold_bytes=None)


@pytest.fixture
def profiled_vm() -> RuntimeEnvironment:
    """A runtime with the semantic profiler enabled (sampling: always)."""
    return RuntimeEnvironment(gc_threshold_bytes=None,
                              profiler=SemanticProfiler())
