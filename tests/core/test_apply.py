"""Offline replacement policies (ReplacementMap)."""

import pytest

from repro.collections.wrappers import ChameleonMap
from repro.core.apply import ReplacementMap
from repro.runtime.context import ContextKey
from repro.runtime.vm import ImplementationChoice, RuntimeEnvironment


class TestBasics:
    def test_offline_policies_do_not_require_runtime_capture(self):
        assert ReplacementMap().requires_runtime_capture is False

    def test_empty_policy_chooses_nothing(self, vm):
        policy = ReplacementMap().bind(vm)
        assert policy.choose("HashMap", None) is None
        assert len(policy) == 0

    def test_unbound_policy_chooses_nothing(self):
        policy = ReplacementMap()
        policy.set_choice(ContextKey.synthetic("s"), "HashMap",
                          ImplementationChoice("ArrayMap"))
        assert policy.choose("HashMap", 1) is None

    def test_choice_keyed_by_context_and_type(self, vm):
        policy = ReplacementMap()
        key = ContextKey.synthetic("factory", "caller")
        policy.set_choice(key, "HashMap", ImplementationChoice("ArrayMap"))
        policy.bind(vm)
        context_id = vm.contexts.intern(key)
        other_id = vm.contexts.intern(ContextKey.synthetic("elsewhere"))
        assert policy.choose("HashMap", context_id).impl_name == "ArrayMap"
        assert policy.choose("HashSet", context_id) is None
        assert policy.choose("HashMap", other_id) is None
        assert policy.applied_lookups == 1

    def test_entries_and_render(self):
        policy = ReplacementMap()
        key = ContextKey.synthetic("factory")
        policy.set_choice(key, "HashMap",
                          ImplementationChoice("ArrayMap",
                                               initial_capacity=8))
        entries = policy.entries()
        assert entries == [(key, "HashMap",
                            ImplementationChoice("ArrayMap", 8))]
        text = policy.render()
        assert "ArrayMap" in text and "capacity=8" in text
        assert "empty" in ReplacementMap().render()


class TestEndToEnd:
    def test_policy_survives_across_vms(self):
        """The point of keying by ContextKey: the same source location
        re-interns to the same key in a fresh VM."""
        def program(vm):
            mapping = ChameleonMap(vm, src_type="HashMap")
            mapping.pin()
            return mapping

        def launch(vm):
            # Shared launcher: both runs reach the allocation through the
            # same stack, as a re-run application would.
            return program(vm)

        # Profile-ish first run just to discover the key.
        from repro.profiler.profiler import SemanticProfiler
        first = RuntimeEnvironment(gc_threshold_bytes=None,
                                   profiler=SemanticProfiler())
        discovered = launch(first)
        key = first.contexts.describe(discovered.context_id)

        policy = ReplacementMap()
        policy.set_choice(key, "HashMap", ImplementationChoice("ArrayMap"))
        second = RuntimeEnvironment(gc_threshold_bytes=None)
        second.policy = policy.bind(second)
        replaced = launch(second)
        assert replaced.impl.IMPL_NAME == "ArrayMap"

    def test_policy_lookup_costs_nothing(self):
        """Offline application models a source edit: the re-run program
        pays no capture or lookup ticks."""
        def program(vm):
            ChameleonMap(vm, src_type="HashMap").pin()

        plain = RuntimeEnvironment(gc_threshold_bytes=None)
        program(plain)

        policy = ReplacementMap()
        with_policy = RuntimeEnvironment(gc_threshold_bytes=None)
        with_policy.policy = policy.bind(with_policy)
        program(with_policy)
        assert with_policy.now == plain.now
