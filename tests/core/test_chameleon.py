"""The offline Chameleon facade: profile -> suggest -> apply -> compare."""

import pytest

from repro.collections.wrappers import ChameleonMap
from repro.core.chameleon import Chameleon, RunMetrics
from repro.core.config import ToolConfig
from repro.memory.heap import OutOfMemoryError
from repro.workloads.base import Workload


class SmallMapWorkload(Workload):
    """Tiny TVLA-shaped program: many small long-lived HashMaps."""

    name = "small-maps"

    def run(self, vm):
        holder = vm.allocate_data("Holder", ref_fields=2)
        vm.add_root(holder)
        def cache_factory():
            return ChameleonMap(vm, src_type="HashMap")
        for i in range(self.scaled(60)):
            mapping = cache_factory()
            holder.add_ref(mapping.heap_obj.obj_id)
            for k in range(5):
                mapping.put(k, k)
            for k in range(5):
                mapping.get(k)


class TestProfiling:
    def test_profile_produces_report_and_suggestions(self):
        tool = Chameleon()
        session = tool.profile(SmallMapWorkload())
        assert session.metrics.completed
        assert session.metrics.ticks > 0
        assert len(session.report.profiles) >= 1
        assert any(s.action.impl_name == "ArrayMap"
                   for s in session.suggestions)

    def test_session_render(self):
        tool = Chameleon()
        session = tool.profile(SmallMapWorkload())
        text = session.render()
        assert "allocation contexts" in text
        assert "ArrayMap" in text

    def test_sampling_configured_by_tool_config(self):
        config = ToolConfig(sampling_rate=4, sampling_warmup=2)
        tool = Chameleon(config)
        session = tool.profile(SmallMapWorkload())
        profiler = session.vm.profiler
        assert profiler.unsampled_allocations > 0
        assert profiler.sampled_allocations > 0


class TestOptimize:
    def test_optimize_improves_footprint_and_time(self):
        result = Chameleon().optimize(SmallMapWorkload())
        assert len(result.policy) >= 1
        assert result.peak_reduction > 0.2
        assert result.speedup > 1.0
        assert result.time_reduction == pytest.approx(
            1 - 1 / result.speedup)
        assert "saved" in result.render()

    def test_top_limits_applied_contexts(self):
        tool = Chameleon()
        session = tool.profile(SmallMapWorkload())
        policy = tool.build_policy(session.suggestions, top=0)
        assert len(policy) == 0

    def test_config_top_contexts_to_apply(self):
        tool = Chameleon(ToolConfig(top_contexts_to_apply=0))
        session = tool.profile(SmallMapWorkload())
        assert len(tool.build_policy(session.suggestions)) == 0

    def test_plain_runs_are_deterministic(self):
        tool = Chameleon()
        workload = SmallMapWorkload()
        _, first = tool.plain_run(workload)
        _, second = tool.plain_run(workload)
        assert first == second

    def test_plain_run_is_uninstrumented(self):
        tool = Chameleon()
        vm, _ = tool.plain_run(SmallMapWorkload())
        assert not vm.profiling_enabled
        assert vm.profiler.sampled_allocations == 0


class TestHeapLimits:
    def test_plain_run_raises_oom_under_tight_limit(self):
        tool = Chameleon()
        with pytest.raises(OutOfMemoryError):
            tool.plain_run(SmallMapWorkload(), heap_limit=4096)

    def test_plain_run_succeeds_with_headroom(self):
        tool = Chameleon()
        _, metrics = tool.plain_run(SmallMapWorkload())
        _, limited = tool.plain_run(SmallMapWorkload(),
                                    heap_limit=metrics.peak_live_bytes * 3)
        assert limited.completed


class TestRunMetrics:
    def test_from_vm_snapshot(self):
        tool = Chameleon()
        vm, metrics = tool.plain_run(SmallMapWorkload())
        assert metrics.ticks == vm.now
        assert metrics.peak_live_bytes == vm.timeline.max_live_data
        assert metrics.gc_cycles == vm.timeline.cycle_count
        assert metrics.total_allocated_objects > 0

    def test_zero_division_guards(self):
        zero = RunMetrics(0, 0, 0, 0, 0, True)
        from repro.core.chameleon import OptimizationResult
        result = OptimizationResult(session=None, policy=None,
                                    baseline=zero, optimized=zero)
        assert result.peak_reduction == 0.0
        assert result.time_reduction == 0.0
        assert result.speedup == 1.0
