"""The command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["profile", "tvla"])
        assert args.scale == 0.4
        assert args.top == 5

    def test_experiment_scheduler_defaults(self):
        args = build_parser().parse_args(["experiment", "fig6"])
        assert args.jobs == 1          # serial reference path by default
        assert args.session_cache is None


class TestCommands:
    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        for name in ("tvla", "soot", "pmd", "dacapo-compress"):
            assert name in out

    def test_list_includes_scenario_library(self, capsys):
        from repro.workloads.compiled import SCENARIOS

        _, out = run_cli(capsys, "list")
        assert "scenario library" in out
        for name in SCENARIOS:
            assert name in out
        assert "[heavy-tail]" in out and "[multi-tenant]" in out

    def test_profile(self, capsys):
        code, out = run_cli(capsys, "profile", "tvla",
                            "--scale", "0.1", "--top", "3")
        assert code == 0
        assert "allocation contexts" in out
        assert "ArrayMap" in out
        assert "GC cycles" in out

    def test_profile_fractions_flag(self, capsys):
        _, out = run_cli(capsys, "profile", "tvla", "--scale", "0.1",
                         "--fractions")
        assert "live%" in out

    def test_optimize(self, capsys):
        code, out = run_cli(capsys, "optimize", "findbugs",
                            "--scale", "0.12")
        assert code == 0
        assert "ReplacementMap" in out
        assert "peak footprint" in out

    def test_online(self, capsys):
        code, out = run_cli(capsys, "online", "tvla", "--scale", "0.12",
                            "--retrofit")
        assert code == 0
        assert "slowdown" in out

    def test_experiment_fig3(self, capsys, tmp_path):
        code, out = run_cli(capsys, "experiment", "fig3",
                            "--scale", "0.1",
                            "--runs-root", str(tmp_path / "runs"))
        assert code == 0
        assert "potential" in out
        assert "indexed run" in out

    def test_unknown_workload_exits_with_hint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "quake"])
        assert "available" in str(excinfo.value)

    def test_experiment_with_jobs(self, capsys):
        code, out = run_cli(capsys, "experiment", "fig7",
                            "--scale", "0.05", "--resolution", "32768",
                            "--jobs", "2", "--no-index")
        assert code == 0
        assert "original minimal heap" in out

    def test_experiment_rejects_zero_jobs(self):
        with pytest.raises(SystemExit, match="--jobs"):
            main(["experiment", "fig3", "--scale", "0.1", "--jobs", "0"])

    def test_experiment_session_cache_roundtrip(self, capsys, tmp_path):
        from repro.analysis import experiments

        cache_path = str(tmp_path / "sessions.pkl")
        experiments.reset_session_cache()
        _, first = run_cli(capsys, "experiment", "fig7",
                           "--scale", "0.05", "--resolution", "32768",
                           "--session-cache", cache_path, "--no-index")
        assert (tmp_path / "sessions.pkl").exists()
        # A later invocation (fresh in-memory cache) reloads the spilled
        # sessions and reproduces the identical artifact.
        experiments.reset_session_cache()
        _, second = run_cli(capsys, "experiment", "fig7",
                            "--scale", "0.05", "--resolution", "32768",
                            "--session-cache", cache_path, "--no-index")
        assert second == first
        assert experiments.get_session_cache().hits > 0
        experiments.reset_session_cache()

    def test_compile_trace_runs_and_checks(self, capsys):
        corpus = pathlib.Path(__file__).parents[1] / "verify" / "corpus"
        code, out = run_cli(capsys, "compile-trace",
                            str(corpus / "tvla-map-000.json"),
                            str(corpus / "bloat-list-000.json"),
                            "--rounds", "2", "--check", "--sanitize")
        assert code == 0
        assert out.count("sanitizer=clean") == 2
        assert out.count("replay-anchor ok") == 2

    def test_compile_trace_multi_tenant(self, capsys):
        corpus = pathlib.Path(__file__).parents[1] / "verify" / "corpus"
        code, out = run_cli(capsys, "compile-trace",
                            str(corpus / "tvla-map-000.json"),
                            str(corpus / "pmd-set-000.json"),
                            "--multi-tenant")
        assert code == 0
        assert "multi-tenant(" in out
        assert out.count("ticks=") == 1  # one woven run, not two

    def test_compile_trace_rejects_garbage_input(self, tmp_path):
        bogus = tmp_path / "not-a-trace.json"
        bogus.write_text("{\"format\": 1}", encoding="utf-8")
        with pytest.raises(SystemExit, match="not a readable trace"):
            main(["compile-trace", str(bogus)])

    def test_experiment_session_store_roundtrip(self, capsys, tmp_path):
        """A directory --session-cache spills one content-addressed
        file per entry instead of a single pickle."""
        from repro.analysis import experiments

        store_dir = tmp_path / "store"
        experiments.reset_session_cache()
        _, first = run_cli(capsys, "experiment", "fig7",
                           "--scale", "0.05", "--resolution", "32768",
                           "--session-cache", str(store_dir), "--no-index")
        spilled = list(store_dir.glob("*.pkl"))
        assert len(spilled) == len(experiments.get_session_cache())
        experiments.reset_session_cache()
        _, second = run_cli(capsys, "experiment", "fig7",
                            "--scale", "0.05", "--resolution", "32768",
                            "--session-cache", str(store_dir), "--no-index")
        assert second == first
        assert experiments.get_session_cache().hits > 0
        experiments.reset_session_cache()
