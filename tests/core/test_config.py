"""Tool configuration."""

import pytest

from repro.core.config import ToolConfig
from repro.memory.layout import MemoryModel
from repro.profiler.stability import StabilityPolicy
from repro.runtime.costs import CostModel


class TestDefaults:
    def test_paper_defaults(self):
        config = ToolConfig()
        assert config.context_depth == 2           # "usually of depth 2 or 3"
        assert config.sampling_rate == 1
        assert config.memory_model.name == "32-bit"
        assert config.online_retrofit_live is False
        assert config.top_contexts_to_apply is None

    def test_independent_instances(self):
        a, b = ToolConfig(), ToolConfig()
        a.constants["X"] = 1.0
        assert "X" not in b.constants


class TestValidation:
    def test_sampling_rate(self):
        with pytest.raises(ValueError):
            ToolConfig(sampling_rate=0)

    def test_online_decide_after(self):
        with pytest.raises(ValueError):
            ToolConfig(online_decide_after=0)

    def test_vm_core(self):
        with pytest.raises(ValueError):
            ToolConfig(vm_core="warp")


class TestFingerprint:
    """The fingerprint is the session-cache key component: stable for
    equal configs, different whenever any field changes."""

    # One changed value per ToolConfig field, each differing from the
    # default, so the loop below proves every field is covered by the
    # digest.
    CHANGED = {
        "constants": {"SMALL_SIZE": 3.0},
        "stability": StabilityPolicy.permissive(),
        "min_potential_bytes": 2048,
        "context_depth": 5,
        "sampling_rate": 17,
        "sampling_warmup": 99,
        "memory_model": MemoryModel.for_64bit(),
        "cost_model": CostModel().with_overrides(hash_compute=99),
        "gc_threshold_bytes": 4096,
        "online_decide_after": 31,
        "online_retrofit_live": True,
        "top_contexts_to_apply": 5,
    }

    # Fields that deliberately do NOT alter the fingerprint: they change
    # wall-clock behaviour only, never the simulated run, so sessions
    # cached under one value stay valid under another.
    EXCLUDED = {"gc_core", "vm_core"}

    def test_equal_configs_equal_fingerprints(self):
        assert ToolConfig().fingerprint() == ToolConfig().fingerprint()
        assert ToolConfig(context_depth=3).fingerprint() \
            == ToolConfig(context_depth=3).fingerprint()

    def test_fingerprint_is_stable_across_instances(self):
        config = ToolConfig()
        assert config.fingerprint() == config.fingerprint()

    def test_every_field_alters_the_fingerprint(self):
        import dataclasses

        base = ToolConfig().fingerprint()
        field_names = {f.name for f in dataclasses.fields(ToolConfig)}
        assert field_names == set(self.CHANGED) | self.EXCLUDED, \
            "CHANGED/EXCLUDED must cover every ToolConfig field"
        for name, value in self.CHANGED.items():
            changed = ToolConfig(**{name: value}).fingerprint()
            assert changed != base, f"field {name!r} not in fingerprint"

    def test_gc_core_does_not_alter_the_fingerprint(self):
        """All GC cores are byte-identical, so cached sessions must be
        shared across them."""
        base = ToolConfig().fingerprint()
        assert ToolConfig(gc_core="reference").fingerprint() == base
        assert ToolConfig(gc_core="vector").fingerprint() == base

    def test_gc_core_validation(self):
        with pytest.raises(ValueError):
            ToolConfig(gc_core="warp")

    def test_vm_core_does_not_alter_the_fingerprint(self):
        """Both op-pipeline cores are byte-identical, so cached sessions
        must be shared across them."""
        base = ToolConfig().fingerprint()
        assert ToolConfig(vm_core="reference").fingerprint() == base
        assert ToolConfig(vm_core="fast").fingerprint() == base


class TestPlumbing:
    def test_config_reaches_the_vm(self):
        from repro.core.chameleon import Chameleon

        config = ToolConfig(
            memory_model=MemoryModel.for_64bit(),
            cost_model=CostModel().with_overrides(hash_compute=99),
            gc_threshold_bytes=1234,
            context_depth=3)
        vm = Chameleon(config).make_vm()
        assert vm.model.pointer_bytes == 8
        assert vm.costs.hash_compute == 99
        assert vm.gc_threshold_bytes == 1234
        assert vm.contexts.depth == 3

    def test_vm_core_reaches_the_vm(self, monkeypatch):
        from repro.core.chameleon import Chameleon

        vm = Chameleon(ToolConfig(vm_core="reference")).make_vm()
        assert vm.vm_core == "reference"
        monkeypatch.setenv("REPRO_VM_CORE", "reference")
        assert Chameleon(ToolConfig()).make_vm().vm_core == "reference"

    def test_constants_reach_the_engine(self):
        from repro.core.chameleon import Chameleon

        tool = Chameleon(ToolConfig(constants={"SMALL_SIZE": 3.0}))
        assert tool.engine.constants["SMALL_SIZE"] == 3.0

    def test_stability_reaches_the_engine(self):
        from repro.core.chameleon import Chameleon

        policy = StabilityPolicy.permissive()
        tool = Chameleon(ToolConfig(stability=policy))
        assert tool.engine.stability is policy

    def test_64bit_model_changes_measured_sizes(self):
        """The layout parameter is live: the same program has a bigger
        footprint under 64-bit headers and pointers."""
        from repro.core.chameleon import Chameleon
        from repro.workloads import TvlaWorkload

        workload = TvlaWorkload(scale=0.1)
        _, small = Chameleon(ToolConfig()).plain_run(workload)
        _, large = Chameleon(ToolConfig(
            memory_model=MemoryModel.for_64bit())).plain_run(workload)
        assert large.peak_live_bytes > 1.3 * small.peak_live_bytes
