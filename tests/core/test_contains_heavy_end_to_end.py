"""End-to-end Table 2 rule 1: ArrayList -> LinkedHashSet replacement.

The trickiest replacement semantically: the program keeps speaking the
List API while the backing becomes an insertion-ordered hash structure.
This test drives the full loop -- profile, suggest, apply, re-run -- and
checks behaviour, footprint and the time win the rule promises.
"""

import pytest

from repro.collections.wrappers import ChameleonList
from repro.core.chameleon import Chameleon
from repro.workloads.base import Workload


class MembershipWorkload(Workload):
    """A worklist of unique records probed by contains() constantly."""

    name = "membership"

    def run(self, vm):
        self.final_contents = None
        self.probe_results = []
        holder = vm.allocate_data("Holder", ref_fields=1)
        vm.add_root(holder)

        def make_seen_list():
            return ChameleonList(vm, src_type="ArrayList")

        for _ in range(4):
            seen = make_seen_list()
            holder.add_ref(seen.heap_obj.obj_id)
            records = [vm.allocate_data("Rec", int_fields=2)
                       for _ in range(200)]
            for record in records:
                # The classic slow idiom: contains() before every add.
                if not seen.contains(record):
                    seen.add(record)
            for record in records[::3]:
                self.probe_results.append(seen.contains(record))
            self.final_contents = seen.size()


class TestContainsHeavyReplacement:
    @pytest.fixture(scope="class")
    def outcome(self):
        tool = Chameleon()
        workload = MembershipWorkload()
        session = tool.profile(workload)
        policy = tool.build_policy(session.suggestions)
        _, base = tool.plain_run(workload)
        base_probes = list(workload.probe_results)
        base_size = workload.final_contents
        _, optimized = tool.plain_run(workload, policy=policy)
        return (session, policy, base, optimized, base_probes,
                base_size, workload)

    def test_rule_fires(self, outcome):
        session, policy, *_ = outcome
        assert any(s.action.impl_name == "LinkedHashSet"
                   for s in session.suggestions)
        assert len(policy) >= 1

    def test_behaviour_preserved(self, outcome):
        _, _, _, _, base_probes, base_size, workload = outcome
        assert workload.probe_results == base_probes
        assert workload.final_contents == base_size == 200

    def test_time_improves(self, outcome):
        _, _, base, optimized, *_ = outcome
        # 200 quadratic contains-scans per list vs hash probes.
        assert optimized.ticks < 0.6 * base.ticks

    def test_replacement_is_the_hash_backed_list(self, outcome):
        """The applied implementation serves the List API over a linked
        hash table."""
        session, policy, *_ = outcome
        (_, _, choice), = policy.entries()
        assert choice.impl_name == "LinkedHashSet"
