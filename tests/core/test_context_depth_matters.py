"""Why allocation *contexts* beat allocation *sites* (section 3.2.1).

"Practically, the full allocation context is rarely needed ... we use a
partial allocation context, containing only a call stack of depth two or
three."  The depth matters when a factory serves callers with different
behaviour: a site-only profile merges them into one unstable context (no
safe suggestion), while a depth-2 context separates them (each side gets
its own fix) -- TVLA's HashMapFactory being the paper's example.
"""

import pytest

from repro.collections.wrappers import ChameleonMap
from repro.core.chameleon import Chameleon
from repro.core.config import ToolConfig
from repro.workloads.base import Workload


class FactoryWorkload(Workload):
    """One map factory, two behaviourally different callers."""

    name = "factory"

    def _map_factory(self, vm):
        # The single allocation *site* both callers go through.
        return ChameleonMap(vm, src_type="HashMap")

    def run(self, vm):
        holder = vm.allocate_data("Holder", ref_fields=2)
        vm.add_root(holder)

        def make_tiny_cache():
            mapping = self._map_factory(vm)
            holder.add_ref(mapping.heap_obj.obj_id)
            for k in range(4):          # small, stable
                mapping.put(k, k)
            return mapping

        def make_big_index():
            mapping = self._map_factory(vm)
            holder.add_ref(mapping.heap_obj.obj_id)
            for k in range(300):        # large, stable
                mapping.put(k, k)
            return mapping

        for _ in range(12):
            make_tiny_cache()
        for _ in range(4):
            make_big_index()


class TestDepthSeparatesFactoryCallers:
    def test_site_only_context_merges_and_stays_silent(self):
        """At depth 1 the factory is one context with sizes {4, 300}:
        unstable, so the stability gate rightly blocks the small-map
        replacement (which would cripple the big indexes)."""
        tool = Chameleon(ToolConfig(context_depth=1))
        session = tool.profile(FactoryWorkload())
        hashmap_profiles = [p for p in session.report.profiles
                            if p.src_type == "HashMap"]
        assert len(hashmap_profiles) == 1  # merged
        assert not any(s.action.impl_name == "ArrayMap"
                       for s in session.suggestions)

    def test_depth_two_separates_and_fixes_the_small_caller(self):
        """At depth 2 the callers are distinct contexts; the tiny-cache
        one is stable-and-small, so ArrayMap fires there and only there."""
        tool = Chameleon(ToolConfig(context_depth=2))
        session = tool.profile(FactoryWorkload())
        hashmap_profiles = [p for p in session.report.profiles
                            if p.src_type == "HashMap"]
        assert len(hashmap_profiles) == 2  # separated
        array_map = [s for s in session.suggestions
                     if s.action.impl_name == "ArrayMap"]
        assert len(array_map) == 1
        assert "make_tiny_cache" in array_map[0].profile.render_context()

    def test_depth_two_fix_applies_only_to_the_small_caller(self):
        """End to end: applying the depth-2 policy shrinks the heap
        without touching the big indexes."""
        tool = Chameleon(ToolConfig(context_depth=2))
        workload = FactoryWorkload()
        session = tool.profile(workload)
        policy = tool.build_policy(session.suggestions)
        _, base = tool.plain_run(workload)
        _, optimized = tool.plain_run(workload, policy=policy)
        assert optimized.peak_live_bytes < base.peak_live_bytes
