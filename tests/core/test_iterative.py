"""The iterative methodology of section 5.2 step 4."""

import pytest

from repro.core.apply import ReplacementMap
from repro.core.chameleon import Chameleon
from repro.runtime.context import ContextKey
from repro.runtime.vm import ImplementationChoice
from repro.workloads import TvlaWorkload


class TestMergeChoice:
    def test_new_entry_counts_as_change(self):
        policy = ReplacementMap()
        key = ContextKey.synthetic("s")
        assert policy.merge_choice(key, "HashMap",
                                   ImplementationChoice("ArrayMap"))
        assert len(policy) == 1

    def test_identical_merge_is_no_change(self):
        policy = ReplacementMap()
        key = ContextKey.synthetic("s")
        choice = ImplementationChoice("ArrayMap")
        policy.merge_choice(key, "HashMap", choice)
        assert not policy.merge_choice(key, "HashMap",
                                       ImplementationChoice("ArrayMap"))

    def test_capacity_advice_combines_with_replacement(self):
        """Round 1 replaces; round 2's capacity advice refines."""
        policy = ReplacementMap()
        key = ContextKey.synthetic("s")
        policy.merge_choice(key, "HashMap",
                            ImplementationChoice("ArrayMap"))
        assert policy.merge_choice(
            key, "HashMap", ImplementationChoice(None, initial_capacity=5))
        (_, _, merged), = policy.entries()
        assert merged.impl_name == "ArrayMap"
        assert merged.initial_capacity == 5

    def test_replacement_combines_with_earlier_capacity(self):
        policy = ReplacementMap()
        key = ContextKey.synthetic("s")
        policy.merge_choice(key, "ArrayList",
                            ImplementationChoice(None, initial_capacity=40))
        policy.merge_choice(key, "ArrayList",
                            ImplementationChoice("LazyArrayList"))
        (_, _, merged), = policy.entries()
        assert merged.impl_name == "LazyArrayList"
        assert merged.initial_capacity == 40


class TestIterativeOptimisation:
    def test_top_limited_rounds_accumulate_the_full_fix_set(self):
        """The paper modified 'the top allocation contexts' each pass and
        repeated; with top=3 per round the nine TVLA fixes arrive over
        several rounds."""
        tool = Chameleon()
        result = tool.optimize_iteratively(TvlaWorkload(scale=0.15),
                                           top_per_round=3, max_rounds=6)
        assert result.rounds >= 3
        assert len(result.policy) >= 7  # all seven map contexts (and more)
        one_shot = tool.optimize(TvlaWorkload(scale=0.15))
        assert result.peak_reduction == pytest.approx(
            one_shot.peak_reduction, abs=0.03)

    def test_converges_and_is_idempotent(self):
        tool = Chameleon()
        result = tool.optimize_iteratively(TvlaWorkload(scale=0.15),
                                           max_rounds=5)
        assert result.converged
        # Unlimited application converges in two rounds: one to find
        # everything, one to verify nothing changed.
        assert result.rounds == 2
        assert "converged" in result.render()

    def test_round_limit_respected(self):
        tool = Chameleon()
        result = tool.optimize_iteratively(TvlaWorkload(scale=0.15),
                                           top_per_round=1, max_rounds=2)
        assert result.rounds == 2
        assert not result.converged

    def test_never_regresses(self):
        tool = Chameleon()
        result = tool.optimize_iteratively(TvlaWorkload(scale=0.15),
                                           max_rounds=3)
        assert result.optimized.peak_live_bytes <= result.baseline.peak_live_bytes
        assert result.peak_reduction > 0.3
