"""Fully automatic (online) mode: learning policy and its costs."""

import pytest

from repro.collections.wrappers import ChameleonMap
from repro.core.chameleon import Chameleon
from repro.core.config import ToolConfig
from repro.core.online import OnlineChameleon, OnlinePolicy
from repro.workloads.base import Workload


class ChurnWorkload(Workload):
    """A rolling window of small maps from one context: enough deaths for
    the online policy to decide, enough live instances at each GC for the
    space-gated small-map rule to see real potential."""

    name = "churn"

    def run(self, vm):
        self.impl_names = []
        window = []

        def cache_site():
            return ChameleonMap(vm, src_type="HashMap")

        kept = 0
        for i in range(self.scaled(120)):
            mapping = cache_site()
            mapping.pin()
            # Every third map joins the long-lived state (a growing data
            # structure, so the live peak keeps rising and late -- i.e.
            # replaced -- allocations shape it); the rest churn.
            if i % 3 == 0:
                kept += 1
            else:
                window.append(mapping)
            if len(window) > 10:
                window.pop(0).unpin()
            for k in range(5):
                mapping.put(k, k)
            self.impl_names.append(mapping.impl.IMPL_NAME)
            if i % 10 == 9:
                vm.collect()


class TestOnlinePolicyLearning:
    def test_later_allocations_are_replaced(self):
        config = ToolConfig(online_decide_after=4)
        online = OnlineChameleon(config)
        workload = ChurnWorkload()
        result = online.run(workload, with_baseline=False)
        assert workload.impl_names[0] == "HashMap"          # observing
        assert workload.impl_names[-1] == "ArrayMap"        # decided
        assert result.policy.replacements_chosen >= 1
        assert result.policy.decisions_made >= 1

    def test_decision_is_cached(self):
        config = ToolConfig(online_decide_after=4)
        online = OnlineChameleon(config)
        workload = ChurnWorkload()
        online.run(workload, with_baseline=False)
        # Far fewer decisions than allocations: one per context.
        assert online  # smoke
        switched = sum(1 for name in workload.impl_names
                       if name == "ArrayMap")
        assert switched > len(workload.impl_names) // 2

    def test_space_saving_materialises_in_the_same_run(self):
        online = OnlineChameleon(ToolConfig(online_decide_after=4))
        result = online.run(ChurnWorkload())
        assert result.peak_reduction > 0.0


class TestOnlineCosts:
    def test_online_run_is_slower_than_baseline(self):
        online = OnlineChameleon(ToolConfig(online_decide_after=4))
        result = online.run(ChurnWorkload())
        assert result.slowdown > 1.0

    def test_capture_cost_scales_with_allocation_density(self):
        """The PMD-vs-TVLA asymmetry of section 5.4: a program doing few
        operations per collection allocation suffers a larger online
        slowdown than one doing many."""
        online = OnlineChameleon(ToolConfig(online_decide_after=4))

        class OpsHeavyChurn(ChurnWorkload):
            def run(self, workload_vm):
                super().run(workload_vm)
                # Pile non-allocating operation work on top.
                probe = ChameleonMap(workload_vm, src_type="HashMap")
                probe.pin()
                probe.put("k", 1)
                for _ in range(20_000):
                    probe.get("k")

        alloc_dense = online.run(ChurnWorkload())
        op_dense = online.run(OpsHeavyChurn())
        assert alloc_dense.slowdown > op_dense.slowdown

    def test_render_mentions_slowdown(self):
        online = OnlineChameleon(ToolConfig(online_decide_after=4))
        result = online.run(ChurnWorkload(scale=0.5))
        assert "slowdown" in result.render()


class MidIterationRetrofitWorkload(Workload):
    """Churn variant that keeps one populated 'victim' map, with an open
    iterator, alive across the policy's decision point -- so the live
    retrofit must convert a non-empty collection mid-iteration and the
    old implementation's internals must be reclaimed while the iterator
    is still draining."""

    name = "mid-iteration-retrofit"

    def run(self, vm):
        self.vm = vm
        window = []
        victim = None
        iterator = None

        def cache_site():
            return ChameleonMap(vm, src_type="HashMap")

        # Same churn shape as ChurnWorkload: enough same-context deaths
        # for the policy to decide, with GCs racing the retrofit.  The
        # victim is the loop's first instance (the allocation context is
        # the call site, so it must come from the same line).
        for i in range(self.scaled(120)):
            mapping = cache_site()
            mapping.pin()
            if victim is None:
                victim = mapping
                for k in range(6):
                    victim.put(k, k * 10)
                self.before_impl = victim.impl.IMPL_NAME
                iterator = victim.iterate_items()
                self.head = [next(iterator) for _ in range(2)]
                continue
            if i % 3 != 0:
                window.append(mapping)
            if len(window) > 10:
                window.pop(0).unpin()
            for k in range(5):
                mapping.put(k, k)
            if i % 10 == 9:
                vm.collect()

        self.after_impl = victim.impl.IMPL_NAME
        # The race the satellite pins: the swap has happened, the old
        # HashMap internals are garbage, and a GC runs while the
        # pre-swap iterator is still open.
        vm.collect()
        self.tail = list(iterator)
        self.final_items = sorted(victim.snapshot_items())


class TestRetrofit:
    def test_live_instances_swapped_after_decision(self):
        """With retrofit enabled, a decided context's already-live
        collections are converted through their wrappers."""
        online = OnlineChameleon(ToolConfig(online_decide_after=4,
                                            online_retrofit_live=True))
        result = online.run(ChurnWorkload())
        assert result.policy.retrofitted > 0
        assert result.peak_reduction > 0.1

    def test_retrofit_off_by_default(self):
        online = OnlineChameleon(ToolConfig(online_decide_after=4))
        result = online.run(ChurnWorkload(), with_baseline=False)
        assert result.policy.retrofitted == 0

    def test_retrofit_converts_nonempty_collection_mid_iteration(self):
        online = OnlineChameleon(ToolConfig(online_decide_after=4,
                                            online_retrofit_live=True))
        workload = MidIterationRetrofitWorkload()
        result = online.run(workload, with_baseline=False)
        assert result.policy.retrofitted > 0
        assert workload.before_impl == "HashMap"
        assert workload.after_impl == "ArrayMap"
        # Snapshot-at-start semantics survive the migration: the
        # iterator opened before the swap completes over the pre-swap
        # contents...
        expected = [(k, k * 10) for k in range(6)]
        assert sorted(workload.head + workload.tail) == expected
        # ...and the converted map carries the same mappings.
        assert workload.final_items == expected

    def test_retrofit_racing_gc_keeps_heap_sound(self):
        """Every GC cycle racing the retrofit (including the one sweeping
        the abandoned HashMap internals under an open iterator) upholds
        the heap invariants."""
        from repro.verify.sanitizer import sanitized_vms

        online = OnlineChameleon(ToolConfig(online_decide_after=4,
                                            online_retrofit_live=True))
        workload = MidIterationRetrofitWorkload()
        with sanitized_vms() as sanitizer:
            result = online.run(workload, with_baseline=False)
        assert result.policy.retrofitted > 0
        assert workload.after_impl == "ArrayMap"
        assert sanitizer.cycles_checked >= 1
        assert sanitizer.ok, sanitizer.report()
        # The old implementation's entries were reclaimed, not leaked:
        # after the retrofit every live map here is entry-free.
        entries = sum(1 for obj in workload.vm.heap.objects()
                      if obj.type_name == "HashMap$Entry")
        assert entries == 0


class TestOnlinePolicyUnit:
    def test_requires_runtime_capture(self):
        policy = OnlinePolicy(Chameleon().engine)
        assert policy.requires_runtime_capture is True

    def test_unbound_policy_returns_none(self):
        policy = OnlinePolicy(Chameleon().engine)
        assert policy.choose("HashMap", 1) is None

    def test_no_context_returns_none(self):
        policy = OnlinePolicy(Chameleon().engine)
        assert policy.choose("HashMap", None) is None

    def test_decisions_property_copies(self):
        policy = OnlinePolicy(Chameleon().engine)
        decisions = policy.decisions
        decisions[99] = "tampered"
        assert 99 not in policy.decisions
