"""Profiling-session cache: keys, hit behavior, and disk spill."""

import os
import pickle
import threading

import pytest

from repro.core.chameleon import Chameleon, SessionCache
from repro.core.config import ToolConfig
from repro.workloads import TvlaWorkload


@pytest.fixture
def cache():
    return SessionCache()


@pytest.fixture
def tool(cache):
    return Chameleon(ToolConfig(), session_cache=cache)


class TestKey:
    def test_same_spec_same_key(self):
        config = ToolConfig()
        assert SessionCache.key(config, TvlaWorkload(scale=0.1)) \
            == SessionCache.key(config, TvlaWorkload(scale=0.1))

    def test_key_covers_workload_spec(self):
        config = ToolConfig()
        base = SessionCache.key(config, TvlaWorkload(scale=0.1))
        assert SessionCache.key(config, TvlaWorkload(scale=0.2)) != base
        assert SessionCache.key(config, TvlaWorkload(scale=0.1,
                                                     seed=7)) != base
        assert SessionCache.key(
            config, TvlaWorkload(scale=0.1, manual_fixes=True)) != base

    def test_key_covers_config_fingerprint(self):
        workload = TvlaWorkload(scale=0.1)
        assert SessionCache.key(ToolConfig(), workload) \
            != SessionCache.key(ToolConfig(gc_threshold_bytes=1024),
                                workload)


class TestProfileHook:
    def test_second_profile_hits(self, tool, cache):
        first = tool.profile(TvlaWorkload(scale=0.05))
        second = tool.profile(TvlaWorkload(scale=0.05))
        assert cache.misses == 1
        assert cache.hits == 1
        # The cached session is the same measurement, minus the live VM.
        assert second.vm is None
        assert second.metrics == first.metrics
        assert second.report.render_top_contexts(3) \
            == first.report.render_top_contexts(3)

    def test_policy_runs_bypass_the_cache(self, tool, cache):
        session = tool.profile(TvlaWorkload(scale=0.05))
        policy = tool.build_policy(session.suggestions)
        repeat = tool.profile(TvlaWorkload(scale=0.05), policy=policy)
        assert repeat.vm is not None
        assert cache.hits == 0
        assert len(cache) == 1

    def test_heap_limited_runs_bypass_the_cache(self, tool, cache):
        tool.profile(TvlaWorkload(scale=0.05), heap_limit=1 << 30)
        assert len(cache) == 0

    def test_no_cache_installed_keeps_vm(self):
        session = Chameleon(ToolConfig()).profile(TvlaWorkload(scale=0.05))
        assert session.vm is not None

    def test_clear_resets_counters(self, tool, cache):
        tool.profile(TvlaWorkload(scale=0.05))
        tool.profile(TvlaWorkload(scale=0.05))
        cache.clear()
        assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)


class TestDiskSpill:
    def test_save_load_roundtrip(self, tool, cache, tmp_path):
        fresh_session = tool.profile(TvlaWorkload(scale=0.05))
        path = tmp_path / "sessions.pkl"
        assert cache.save(str(path)) == 1

        other_cache = SessionCache()
        assert other_cache.load(str(path)) == 1
        other_tool = Chameleon(ToolConfig(), session_cache=other_cache)
        reloaded = other_tool.profile(TvlaWorkload(scale=0.05))
        assert other_cache.hits == 1
        assert reloaded.metrics == fresh_session.metrics
        assert len(reloaded.suggestions) == len(fresh_session.suggestions)

    def test_load_missing_file_is_a_noop(self, cache, tmp_path):
        assert cache.load(str(tmp_path / "absent.pkl")) == 0
        assert len(cache) == 0

    def test_load_does_not_clobber_existing_entries(self, tool, cache,
                                                    tmp_path):
        tool.profile(TvlaWorkload(scale=0.05))
        path = tmp_path / "sessions.pkl"
        cache.save(str(path))
        assert cache.load(str(path)) == 0
        assert len(cache) == 1


class TestBackingStore:
    """The content-addressed per-entry store behind the in-memory cache:
    puts write through, misses read through (and promote), so scheduler
    workers sharing one store directory share sessions."""

    def test_put_writes_through(self, tool, cache, tmp_path):
        from repro.analysis.index import SessionStore

        store = SessionStore(str(tmp_path / "store"))
        cache.attach_store(store)
        assert cache.backing_store is store
        tool.profile(TvlaWorkload(scale=0.05))
        key = SessionCache.key(ToolConfig(), TvlaWorkload(scale=0.05))
        assert store.get(key) is not None

    def test_miss_reads_through_and_promotes(self, tool, cache, tmp_path):
        from repro.analysis.index import SessionStore

        store_dir = str(tmp_path / "store")
        cache.attach_store(SessionStore(store_dir))
        first = tool.profile(TvlaWorkload(scale=0.05))

        # A different process's cache: empty memory, same store.
        other_cache = SessionCache()
        other_cache.attach_store(SessionStore(store_dir))
        other_tool = Chameleon(ToolConfig(), session_cache=other_cache)
        reloaded = other_tool.profile(TvlaWorkload(scale=0.05))
        assert other_cache.hits == 1
        assert other_cache.store_hits == 1
        assert reloaded.metrics == first.metrics
        assert len(other_cache) == 1  # promoted into memory
        other_tool.profile(TvlaWorkload(scale=0.05))
        assert other_cache.store_hits == 1  # second hit was in-memory

    def test_clear_keeps_the_store_attached(self, cache, tmp_path):
        from repro.analysis.index import SessionStore

        store = SessionStore(str(tmp_path / "store"))
        cache.attach_store(store)
        cache.clear()
        assert cache.backing_store is store
        assert cache.store_hits == 0

    def test_detach(self, cache, tmp_path):
        from repro.analysis.index import SessionStore

        cache.attach_store(SessionStore(str(tmp_path / "store")))
        cache.detach_store()
        assert cache.backing_store is None


class TestSpillDurability:
    """A torn, truncated, or concurrent spill must never take down
    later runs: load treats damage as an empty cache with a warning, and
    save is atomic so readers only ever observe complete pickles."""

    def _spill(self, cache, path):
        cache._entries[("k",)] = "session"
        cache.save(str(path))
        del cache._entries[("k",)]

    def test_truncated_spill_is_treated_as_empty(self, cache, tmp_path):
        path = tmp_path / "sessions.pkl"
        self._spill(cache, path)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.warns(RuntimeWarning, match="corrupt or truncated"):
            assert cache.load(str(path)) == 0
        assert len(cache) == 0

    def test_garbage_spill_is_treated_as_empty(self, cache, tmp_path):
        path = tmp_path / "sessions.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.warns(RuntimeWarning, match="corrupt or truncated"):
            assert cache.load(str(path)) == 0
        assert len(cache) == 0

    def test_non_dict_spill_is_treated_as_empty(self, cache, tmp_path):
        path = tmp_path / "sessions.pkl"
        path.write_bytes(pickle.dumps(["a", "list"]))
        with pytest.warns(RuntimeWarning, match="corrupt or truncated"):
            assert cache.load(str(path)) == 0

    def test_failed_save_preserves_previous_spill(self, cache, tmp_path,
                                                  monkeypatch):
        path = tmp_path / "sessions.pkl"
        self._spill(cache, path)
        original = path.read_bytes()

        def boom(entries, handle, protocol=None):
            handle.write(b"half a pi")
            raise OSError("disk full")

        from repro.core import chameleon as chameleon_mod

        monkeypatch.setattr(chameleon_mod.pickle, "dump", boom)
        with pytest.raises(OSError):
            cache.save(str(path))
        monkeypatch.undo()
        assert path.read_bytes() == original  # old spill untouched
        assert [p.name for p in tmp_path.iterdir()] == ["sessions.pkl"]

    def test_concurrent_saves_never_leave_a_torn_file(self, tmp_path,
                                                      monkeypatch):
        """Interleave two full saves: whatever rename wins, the file on
        disk is some one writer's complete pickle."""
        from repro.core import chameleon as chameleon_mod

        path = tmp_path / "sessions.pkl"
        first = SessionCache()
        first._entries[("first",)] = "one"
        second = SessionCache()
        second._entries[("second",)] = "two" * 1000

        real_replace = os.replace
        fired = []

        def interleaved_replace(src, dst):
            if not fired:
                fired.append(True)
                second.save(str(path))  # a second writer completes first
            real_replace(src, dst)

        monkeypatch.setattr(chameleon_mod.os, "replace",
                            interleaved_replace)
        first.save(str(path))
        monkeypatch.undo()

        merged = SessionCache()
        assert merged.load(str(path)) == 1  # complete, one writer's dump
        assert list(merged._entries) == [("first",)]
        assert [p.name for p in tmp_path.iterdir()] == ["sessions.pkl"]

    def test_threaded_save_hammer_yields_a_complete_spill(self, tmp_path):
        path = tmp_path / "sessions.pkl"
        caches = []
        for i in range(4):
            cache = SessionCache()
            cache._entries[(f"writer{i}",)] = "x" * (1000 * (i + 1))
            caches.append(cache)
        threads = [threading.Thread(target=cache.save, args=(str(path),))
                   for cache in caches for _ in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = SessionCache()
        assert merged.load(str(path)) == 1  # some writer's full dump
        assert [p.name for p in tmp_path.iterdir()] == ["sessions.pkl"]
