"""End-to-end soundness: whatever the tool suggests must never hurt.

Property-based fuzzing of the whole pipeline over random collection-usage
patterns (``SyntheticWorkload``): after profiling and applying every
auto-applicable suggestion,

1. the program computes the same results (logical behaviour preserved --
   the paper's interchangeability requirement),
2. the peak footprint does not regress,
3. the suggestions respect their own rules' guards (no SingletonList for
   multi-element contexts, no ArrayMap for unstable contexts, ...).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.chameleon import Chameleon
from repro.workloads.synthetic import ContextSpec, SyntheticWorkload

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@st.composite
def context_specs(draw, index: int = 0):
    src_type = draw(st.sampled_from(
        ["HashMap", "HashSet", "ArrayList", "LinkedList"]))
    sizes = draw(st.lists(st.integers(0, 24), min_size=1, max_size=3))
    return ContextSpec(
        name=f"ctx{index}_{draw(st.integers(0, 10**6))}",
        src_type=src_type,
        instances=draw(st.integers(1, 10)),
        sizes=tuple(sizes),
        initial_capacity=draw(st.one_of(st.none(), st.integers(0, 64))),
        reads_per_element=draw(st.integers(0, 3)),
        indexed_reads=draw(st.booleans()),
        removals=draw(st.integers(0, 4)),
        iterations=draw(st.integers(0, 2)),
        long_lived=draw(st.booleans()),
    )


@st.composite
def workloads(draw):
    count = draw(st.integers(1, 4))
    specs = [draw(context_specs(index)) for index in range(count)]
    return SyntheticWorkload(specs)


class TestSuggestionsNeverHurt:
    @_SETTINGS
    @given(workload=workloads())
    def test_behaviour_preserved_and_footprint_never_regresses(self,
                                                               workload):
        tool = Chameleon()
        session = tool.profile(workload)
        policy = tool.build_policy(session.suggestions)

        _, baseline = tool.plain_run(workload)
        baseline_contents = {name: list(values) for name, values
                            in workload.observed.items()}
        _, optimized = tool.plain_run(workload, policy=policy)

        # 1. Logical behaviour is preserved under every replacement the
        #    tool chose (the interchangeability requirement).  The one
        #    sanctioned semantic change is deduplication when a list is
        #    replaced by a hash-backed one; the built-in rules only allow
        #    it for contains-heavy usage, which this generator's specs
        #    never produce, so exact equality must hold.
        assert workload.observed == baseline_contents

        # 2. The footprint never regresses (small absolute tolerance for
        #    alignment-level wobble on tiny heaps).
        assert (optimized.peak_live_bytes
                <= baseline.peak_live_bytes + 256)

    @_SETTINGS
    @given(workload=workloads())
    def test_suggestions_respect_their_guards(self, workload):
        tool = Chameleon()
        session = tool.profile(workload)
        for suggestion in session.suggestions:
            info = suggestion.profile.info
            impl = suggestion.action.impl_name
            if impl == "SingletonList":
                assert info.max_size_stats.max <= 1
            if impl in ("ArrayMap", "ArraySet"):
                # Small-and-stable guard (Definition 3.1).
                assert info.avg_max_size < 12
                assert tool.engine.stability.context_is_stable(info)
            if impl in ("LazyArrayList", "LazySet", "LazyMap"):
                # Lazy fixes only for contexts that stay empty (or were
                # never used at all).
                assert info.avg_max_size == 0
            if suggestion.action.kind.name == "SET_CAPACITY":
                assert suggestion.resolved_capacity >= 1

    @_SETTINGS
    @given(workload=workloads())
    def test_profiling_runs_are_deterministic(self, workload):
        tool = Chameleon()
        first = tool.profile(workload)
        second = tool.profile(workload)
        render_first = [s.render() for s in first.suggestions]
        render_second = [s.render() for s in second.suggestions]
        assert render_first == render_second
        assert first.metrics.peak_live_bytes == second.metrics.peak_live_bytes
