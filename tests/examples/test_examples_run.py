"""The bundled examples must keep running (rot protection).

``abstract_interpreter.py`` is excluded here because its minimal-heap
searches take tens of seconds; the benchmark suite exercises the same
code paths.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize("script", ["quickstart.py",
                                    "custom_collections.py",
                                    "online_adaptation.py"])
def test_example_runs_to_completion(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "example produced no output"


def test_quickstart_reports_a_saving(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "replace with ArrayMap" in out
    assert "peak footprint saved" in out


def test_online_example_learns(capsys):
    runpy.run_path(str(EXAMPLES / "online_adaptation.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "last allocation backed by  : ArrayMap" in out
    assert "retrofitted" in out
