"""The ``lint`` CLI subcommand: formats, outputs, exit behaviour."""

import json
import os

import pytest

from repro.cli import main
from repro.core.chameleon import Chameleon, SessionCache
from repro.core.config import ToolConfig
from repro.lint.sarif import validate_sarif
from repro.workloads.tvla import TvlaWorkload

HERE = os.path.dirname(__file__)
PLANTED = os.path.join(HERE, "planted_defects.rules")
WORKLOADS = os.path.join(HERE, os.pardir, os.pardir,
                         "src", "repro", "workloads")
TVLA_SOURCE = os.path.join(WORKLOADS, "tvla.py")


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestExitCodes:
    def test_builtin_rules_pass_fail_on_error(self, capsys):
        code, out = run_cli(capsys, "lint")
        assert code == 0
        assert "lint:" in out

    def test_builtin_overlap_warnings_trip_fail_on_warning(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(capsys, "lint", "--fail-on", "warning")
        assert excinfo.value.code == 1

    def test_no_overlap_filter_makes_builtins_warning_clean(self, capsys):
        code, out = run_cli(capsys, "lint", "--no-overlap",
                            "--fail-on", "warning")
        assert code == 0
        assert "no findings" in out

    def test_planted_defects_fail(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(capsys, "lint", "--rules", PLANTED)
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "L1-unknown-constant" in out
        assert "L1-unknown-impl" in out

    def test_missing_rules_file_is_a_clean_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(capsys, "lint", "--rules", "/no/such/file.rules")
        assert "/no/such/file.rules" in str(excinfo.value)

    def test_self_lint_workloads_passes(self, capsys):
        # The CI leg: the repository's own workload sources lint clean
        # of errors under the builtin rule set.
        code, _out = run_cli(capsys, "lint", "--paths", WORKLOADS,
                             "--fail-on", "error")
        assert code == 0


class TestFormats:
    def test_json_format(self, capsys):
        code, out = run_cli(capsys, "lint", "--format", "json")
        assert code == 0
        document = json.loads(out)
        assert document["schema"] == "chameleon-lint"
        assert all("id" in f for f in document["findings"])

    def test_sarif_format_validates(self, capsys):
        code, out = run_cli(capsys, "lint", "--paths", TVLA_SOURCE,
                            "--format", "sarif")
        assert code == 0
        assert validate_sarif(out) == []

    def test_output_file(self, capsys, tmp_path):
        target = tmp_path / "lint.sarif"
        code, out = run_cli(capsys, "lint", "--format", "sarif",
                            "--output", str(target))
        assert code == 0
        assert f"wrote {target}" in out
        assert validate_sarif(target.read_text()) == []


class TestDriftThroughCli:
    @pytest.fixture(scope="class")
    def session_pickle(self, tmp_path_factory):
        config = ToolConfig()
        workload = TvlaWorkload(scale=0.1)
        session = Chameleon(config).profile(workload)
        cache = SessionCache()
        cache.put(SessionCache.key(config, workload), session)
        path = tmp_path_factory.mktemp("drift") / "sessions.pkl"
        cache.save(str(path))
        return str(path)

    def test_drift_report_reaches_the_output(self, capsys, session_pickle):
        with pytest.raises(SystemExit):  # static-only is a warning
            run_cli(capsys, "lint", "--paths", TVLA_SOURCE,
                    "--drift", session_pickle, "--no-overlap",
                    "--fail-on", "warning")
        out = capsys.readouterr().out
        assert "L3-drift-agreement" in out
        assert "L3-static-only" in out
        assert "L3-dynamic-only" in out

    def test_missing_session_file_is_a_clean_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(capsys, "lint", "--paths", TVLA_SOURCE,
                    "--drift", "/no/such/sessions.pkl")
        assert "/no/such/sessions.pkl" in str(excinfo.value)
