"""Layer 3 drift report: static predictions vs a real profiled session.

Profiles the tvla workload once (small scale, same pipeline as the
experiment driver), caches the session the way ``--session-cache``
does, and diffs it against the usage linter's predictions for
``src/repro/workloads/tvla.py`` -- the acceptance scenario: at least
one agreement, at least one static-only, at least one dynamic-only.
"""

import os

import pytest

from repro.core.chameleon import Chameleon, SessionCache
from repro.core.config import ToolConfig
from repro.lint.drift import (LINE_TOLERANCE, DriftEntry, drift_report,
                              load_sessions, three_way_report)
from repro.lint.findings import Severity
from repro.lint.usage import StaticPrediction, lint_paths
from repro.workloads.tvla import TvlaWorkload

TVLA_SOURCE = os.path.join(os.path.dirname(__file__), os.pardir,
                           os.pardir, "src", "repro", "workloads",
                           "tvla.py")


@pytest.fixture(scope="module")
def tvla_session():
    config = ToolConfig()
    workload = TvlaWorkload(scale=0.1)
    return Chameleon(config).profile(workload), config, workload


@pytest.fixture(scope="module")
def tvla_predictions():
    _findings, predictions = lint_paths([TVLA_SOURCE])
    return predictions


class TestTvlaDrift:
    def test_acceptance_shape(self, tvla_session, tvla_predictions):
        session, _config, _workload = tvla_session
        findings, entries = drift_report(tvla_predictions, [session])
        by_status = {}
        for entry in entries:
            by_status.setdefault(entry.status, []).append(entry)
        assert len(by_status.get("agreement", [])) >= 1
        assert len(by_status.get("static-only", [])) >= 1
        assert len(by_status.get("dynamic-only", [])) >= 1
        assert {f.id for f in findings} == {
            "L3-drift-agreement", "L3-static-only", "L3-dynamic-only"}

    def test_random_access_agreement(self, tvla_session, tvla_predictions):
        # tvla's trace log really is a LinkedList read with get(i): the
        # static fact and the profiled rule must meet at that site.
        session, _config, _workload = tvla_session
        _findings, entries = drift_report(tvla_predictions, [session])
        agreed = [e for e in entries if e.status == "agreement"
                  and e.rule == "random-access-linked-list"]
        assert agreed
        assert agreed[0].location == "repro.workloads.tvla.run"
        assert agreed[0].src_type == "LinkedList"

    def test_small_map_is_dynamic_only(self, tvla_session,
                                       tvla_predictions):
        # The seven factory-made maps fire small-map, a purely
        # threshold-dependent rule no syntactic fact can predict.
        session, _config, _workload = tvla_session
        _findings, entries = drift_report(tvla_predictions, [session])
        dynamic_only = {e.rule for e in entries
                        if e.status == "dynamic-only"}
        assert "small-map" in dynamic_only

    def test_severities(self, tvla_session, tvla_predictions):
        session, _config, _workload = tvla_session
        findings, _entries = drift_report(tvla_predictions, [session])
        severity = {f.id: f.severity for f in findings}
        assert severity["L3-drift-agreement"] is Severity.NOTE
        assert severity["L3-static-only"] is Severity.WARNING
        assert severity["L3-dynamic-only"] is Severity.NOTE

    def test_session_cache_round_trip(self, tvla_session,
                                      tvla_predictions, tmp_path):
        # The CLI consumes --session-cache pickles; the drift report
        # must be identical on the cached (vm=None) sessions.
        session, config, workload = tvla_session
        cache_path = tmp_path / "sessions.pkl"
        cache = SessionCache()
        cache.put(SessionCache.key(config, workload), session)
        assert cache.save(str(cache_path)) == 1

        loaded = load_sessions(str(cache_path))
        assert len(loaded) == 1 and loaded[0].vm is None
        _live, live_entries = drift_report(tvla_predictions, [session])
        _cached, cached_entries = drift_report(tvla_predictions, loaded)
        assert cached_entries == live_entries


class TestMatchingRules:
    def _prediction(self, line):
        return StaticPrediction(
            location="repro.workloads.x.run",
            src_types=frozenset({"ArrayList"}),
            predicted_rule="incremental-resizing",
            finding_id="L2-growth-no-capacity",
            file="x.py", line=line)

    def _session(self, dynamic_line):
        # A minimal stand-in with the one attribute shape drift reads.
        class Frame:
            location = "repro.workloads.x.run"
            line = dynamic_line

        class Key:
            frames = (Frame(),)

        class Profile:
            key = Key()
            src_type = "ArrayList"

            @staticmethod
            def render_context():
                return f"ArrayList:repro.workloads.x.run:{dynamic_line}"

        class Rule:
            text = ("Collection : maxSize > initialCapacity "
                    "& maxSize >= RESIZE_MIN -> setCapacity(maxSize)")

        class Suggestion:
            profile = Profile()
            rule = Rule()
            secondary = []

        class Session:
            suggestions = [Suggestion()]

        return Session()

    def test_line_proximity_separates_same_type_sites(self):
        # Two same-type allocations in one function must not cross-match:
        # the agreement only forms within the line tolerance.
        near = drift_report([self._prediction(line=40)],
                            [self._session(dynamic_line=40 + LINE_TOLERANCE)])
        far = drift_report([self._prediction(line=40)],
                           [self._session(dynamic_line=90)])
        assert [e.status for e in near[1]] == ["agreement"]
        assert sorted(e.status for e in far[1]) == [
            "dynamic-only", "static-only"]

    def test_unknown_line_does_not_discriminate(self):
        report = drift_report([self._prediction(line=0)],
                              [self._session(dynamic_line=90)])
        assert [e.status for e in report[1]] == ["agreement"]

    def test_empty_inputs(self):
        findings, entries = drift_report([], [])
        assert findings == [] and entries == []
        assert DriftEntry("agreement", "loc", "ArrayList", "r").rule == "r"


class TestThreeWayReport:
    """Interval verdicts refine the two-way drift statuses."""

    def _prediction(self, line=40):
        return StaticPrediction(
            location="repro.workloads.x.run",
            src_types=frozenset({"ArrayList"}),
            predicted_rule="incremental-resizing",
            finding_id="L2-growth-no-capacity",
            file="x.py", line=line)

    def _session(self, dynamic_line=40):
        helper = TestMatchingRules()
        return helper._session(dynamic_line=dynamic_line)

    def _classify(self, verdict):
        from repro.lint.intervals import Tri
        return lambda _prediction: Tri[verdict]

    def test_agreement_carries_verdict(self):
        findings, entries = three_way_report(
            [self._prediction()], [self._session()],
            self._classify("TRUE"))
        (entry,) = [e for e in entries if e.status == "agreement"]
        assert entry.verdict == "must"
        (finding,) = [f for f in findings
                      if f.id == "L3-drift-agreement"]
        assert "must" in finding.message

    def test_must_without_profile_is_coverage_gap(self):
        findings, entries = three_way_report(
            [self._prediction()], [], self._classify("TRUE"))
        (entry,) = entries
        assert entry.status == "coverage-gap"
        (finding,) = findings
        assert finding.id == "L3-coverage-gap"
        assert finding.severity is Severity.WARNING

    def test_must_at_profiled_context_is_gated(self):
        # Dynamic session profiles the context but the rule never
        # fired there: a dynamic gate blocked it.
        session = self._session()
        suggestion = session.suggestions[0]
        suggestion.rule.text = ("List : #get(int) > REQUIRED_MANY "
                                "-> replace LinkedList ArrayList")
        _findings, entries = three_way_report(
            [self._prediction()], [session], self._classify("TRUE"))
        statuses = {e.status for e in entries}
        assert "static-only-gated" in statuses

    def test_refuted_prediction(self):
        findings, entries = three_way_report(
            [self._prediction()], [], self._classify("FALSE"))
        (entry,) = entries
        assert entry.status == "refuted"
        assert entry.verdict == "refuted"
        (finding,) = findings
        assert finding.id == "L3-refuted"
        assert finding.severity is Severity.NOTE

    def test_unknown_prediction_is_unsubstantiated(self):
        findings, entries = three_way_report(
            [self._prediction()], [], self._classify("UNKNOWN"))
        (entry,) = entries
        assert entry.status == "unsubstantiated"
        (finding,) = findings
        assert finding.id == "L3-unsubstantiated"

    def test_proposal_confirmed(self):
        findings, entries = three_way_report(
            [], [self._session()], self._classify("UNKNOWN"),
            proposals=[("repro.workloads.x.run", 40, "ArrayList",
                        "incremental-resizing", "setCapacity(60)")])
        (entry,) = [e for e in entries
                    if e.status.startswith("proposal")]
        assert entry.status == "proposal-confirmed"
        assert any(f.id == "L3-proposal-confirmed" for f in findings)

    def test_proposal_conflict_is_warning(self):
        session = self._session()
        session.suggestions[0].rule.text = (
            "List : #contains > CONTAINS_MANY -> replace ArrayList "
            "ArraySet")
        findings, entries = three_way_report(
            [], [session], self._classify("UNKNOWN"),
            proposals=[("repro.workloads.x.run", 40, "ArrayList",
                        "incremental-resizing", "setCapacity(60)")])
        (entry,) = [e for e in entries
                    if e.status.startswith("proposal")]
        assert entry.status == "proposal-conflict"
        (finding,) = [f for f in findings
                      if f.id == "L3-proposal-conflict"]
        assert finding.severity is Severity.WARNING

    def test_proposal_without_dynamic_site_is_new(self):
        _findings, entries = three_way_report(
            [], [], self._classify("UNKNOWN"),
            proposals=[("repro.workloads.x.run", 40, "ArrayList",
                        "small-map", "replace with ArrayMap(1)")])
        (entry,) = entries
        assert entry.status == "proposal-new"

    def test_tvla_interproc_three_way(self, tvla_session,
                                      tvla_predictions):
        # The real pipeline: interval classification of the coarse tvla
        # predictions against the profiled session.  Every interval
        # *must* that overlaps a dynamic decision has to agree -- a
        # refuted agreement would expose an unsound transfer function.
        from repro.lint.interproc import analyze_paths

        session, _config, _workload = tvla_session
        report = analyze_paths([TVLA_SOURCE])
        findings, entries = three_way_report(
            tvla_predictions, [session], report.classify,
            report.proposal_rows())
        by_status = {}
        for entry in entries:
            by_status.setdefault(entry.status, []).append(entry)
        assert len(by_status.get("agreement", [])) >= 1
        for entry in by_status.get("agreement", []):
            assert entry.verdict != "refuted"
        assert not by_status.get("proposal-conflict")
