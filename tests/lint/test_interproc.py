"""Layer 2.5 interprocedural interval analysis: domain, loops,
summaries, rule verdicts and the static proposal."""

import textwrap

from repro.lint.interproc import (InterprocReport, analyze_source,
                                  export_signatures)
from repro.lint.intervals import Tri


def analyze(source, path="src/repro/workloads/example.py"):
    return analyze_source(textwrap.dedent(source), path)


def site_named(report, variable):
    matches = [s for s in report.sites if s.variable == variable]
    assert matches, f"no site bound to {variable!r}; " \
        f"have {[s.variable for s in report.sites]}"
    return matches[0]


def verdict(site, rule, src_type=None):
    src = src_type or site.src_types[0]
    return site.verdicts[src][rule]


class TestIntervalInference:
    def test_constant_loop_bound_is_exact(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def run(vm):
                buffer = ChameleonList(vm)
                for i in range(18):
                    buffer.add(i)
                return buffer
        """)
        site = site_named(report, "buffer")
        assert site.max_size.lo == 18.0
        assert site.max_size.hi == 18.0
        assert site.ops["#add"].lo == 18.0
        assert site.ops["#add"].hi == 18.0
        assert site.size_stable

    def test_break_makes_lower_bound_zero(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def run(vm, items):
                buffer = ChameleonList(vm)
                for i in range(10):
                    if i in items:
                        break
                    buffer.add(i)
                return buffer
        """)
        site = site_named(report, "buffer")
        assert site.max_size.lo == 0.0
        assert site.max_size.hi == 10.0
        assert not site.size_stable

    def test_opaque_bound_widens_to_infinity(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def run(vm, n):
                buffer = ChameleonList(vm)
                for i in range(n):
                    buffer.add(i)
                return buffer
        """)
        site = site_named(report, "buffer")
        assert site.max_size.lo == 0.0
        assert site.max_size.hi == float("inf")

    def test_len_bound_propagates(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def run(vm):
                source = [1, 2, 3]
                buffer = ChameleonList(vm)
                for item in source:
                    buffer.add(item)
                return buffer
        """)
        site = site_named(report, "buffer")
        assert site.max_size.lo == 3.0
        assert site.max_size.hi == 3.0

    def test_augassign_through_loop(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def run(vm):
                total = 0
                buffer = ChameleonList(vm)
                for i in range(6):
                    total += 2
                    buffer.add(total)
                return buffer
        """)
        site = site_named(report, "buffer")
        assert site.max_size.lo == 6.0
        assert site.max_size.hi == 6.0

    def test_conditional_growth_straddles(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def run(vm, flag):
                buffer = ChameleonList(vm)
                if flag:
                    buffer.add(1)
                return buffer
        """)
        site = site_named(report, "buffer")
        assert site.max_size.lo == 0.0
        assert site.max_size.hi == 1.0

    def test_while_loop_is_unbounded(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def run(vm, queue):
                buffer = ChameleonList(vm)
                while queue.pending():
                    buffer.add(queue.take())
                return buffer
        """)
        site = site_named(report, "buffer")
        assert site.max_size.hi == float("inf")

    def test_remove_shrinks_but_peak_stays(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def run(vm):
                buffer = ChameleonList(vm)
                for i in range(5):
                    buffer.add(i)
                for i in range(5):
                    buffer.remove_first()
                return buffer
        """)
        site = site_named(report, "buffer")
        assert site.max_size.lo == 5.0
        assert site.max_size.hi == 5.0
        assert site.size.lo == 0.0


class TestInterproceduralSummaries:
    FACTORY = """
        from repro.collections import ChameleonMap

        def make_index(vm):
            return ChameleonMap(vm)

        def run(vm):
            index = make_index(vm)
            for i in range(12):
                index.put(i, i)
            return index
    """

    def test_factory_site_carries_chain(self):
        report = analyze(self.FACTORY)
        site = site_named(report, "index")
        assert site.location.endswith("make_index")
        assert site.coarse_location.endswith("run")
        assert site.chain
        assert "make_index" in site.chain[-1][2]

    def test_callee_mutation_charged_at_callsite(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def fill(buffer):
                for i in range(7):
                    buffer.add(i)

            def run(vm):
                buffer = ChameleonList(vm)
                fill(buffer)
                return buffer
        """)
        site = site_named(report, "buffer")
        assert site.ops["#add"].lo == 7.0
        assert site.ops["#add"].hi == 7.0
        assert site.max_size.lo == 7.0

    def test_recursion_degrades_soundly(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def fill(buffer, n):
                if n > 0:
                    buffer.add(n)
                    fill(buffer, n - 1)

            def run(vm):
                buffer = ChameleonList(vm)
                fill(buffer, 4)
                return buffer
        """)
        site = site_named(report, "buffer")
        # A recursive summary may not be exact, but it must not claim
        # a finite bound tighter than the real growth.
        assert site.max_size.hi >= 4.0 or site.escaped

    def test_tuple_in_pylist_keeps_tracking(self):
        # Storing a collection inside a tuple inside a plain Python
        # list must neither escape the site nor drop later op charges
        # read back through iteration + unpacking.
        report = analyze("""
            from repro.collections import ChameleonMap

            def run(vm):
                acc = []
                for i in range(3):
                    table = ChameleonMap(vm)
                    table.put(i, i)
                    acc.append((table,))
                for (table,) in acc:
                    table.get(1)
        """)
        site = site_named(report, "table")
        assert not site.escaped
        assert site.max_size.hi == 1.0
        gets = site.ops["#get(Object)"]
        assert gets.lo <= 3.0 <= gets.hi

    def test_escaped_site_is_not_stable(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def run(vm, sink):
                buffer = ChameleonList(vm)
                buffer.add(1)
                sink.consume(buffer)
                return buffer
        """)
        site = site_named(report, "buffer")
        assert site.escaped
        assert not site.size_stable


class TestRuleVerdicts:
    def test_incremental_resizing_proved(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def run(vm):
                buffer = ChameleonList(vm)
                for i in range(18):
                    buffer.add(i)
                return buffer
        """)
        site = site_named(report, "buffer")
        assert verdict(site, "incremental-resizing") is Tri.TRUE

    def test_incremental_resizing_refuted_below_threshold(self):
        # RESIZE_MIN is 8; a provable ceiling of 4 refutes the rule.
        report = analyze("""
            from repro.collections import ChameleonMap

            def run(vm):
                props = ChameleonMap(vm)
                for i in range(4):
                    props.put(i, i)
                return props
        """)
        site = site_named(report, "props")
        assert verdict(site, "incremental-resizing") is Tri.FALSE

    def test_small_map_decision(self):
        report = analyze("""
            from repro.collections import ChameleonMap

            def run(vm):
                singleton = ChameleonMap(vm)
                singleton.put("k", "v")
                return singleton
        """)
        site = site_named(report, "singleton")
        assert verdict(site, "small-map") is Tri.TRUE
        rule, suggestion = site.decisions[site.src_types[0]]
        assert rule == "small-map"
        assert "ArrayMap" in suggestion.action.render()

    def test_opaque_bound_gives_unknown(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def run(vm, n):
                buffer = ChameleonList(vm)
                for i in range(n):
                    buffer.add(i)
                return buffer
        """)
        site = site_named(report, "buffer")
        assert verdict(site, "incremental-resizing") is Tri.UNKNOWN

    def test_interval_must_finding_has_related_chain(self):
        report = analyze("""
            from repro.collections import ChameleonMap

            def make_map(vm):
                return ChameleonMap(vm)

            def run(vm):
                unused = make_map(vm)
                unused.is_empty()
                return unused
        """)
        musts = [f for f in report.findings
                 if f.id == "L2I-interval-must"]
        assert musts
        assert any(f.related for f in musts)

    def test_proposal_rows_shape(self):
        report = analyze("""
            from repro.collections import ChameleonMap

            def run(vm):
                singleton = ChameleonMap(vm)
                singleton.put("k", "v")
                return singleton
        """)
        rows = report.proposal_rows()
        assert rows
        location, line, src_type, rule, detail = rows[0]
        assert location.endswith("run")
        assert line > 0
        assert src_type == "HashMap"
        assert rule == "small-map"
        assert detail


class TestSignatureExport:
    def test_export_schema_and_bounds(self):
        report = analyze("""
            from repro.collections import ChameleonList

            def run(vm, n):
                buffer = ChameleonList(vm)
                for i in range(18):
                    buffer.add(i)
                for i in range(n):
                    buffer.contains(i)
                return buffer
        """)
        (spec,) = export_signatures(report)
        assert spec["schema"] == "chameleon-sig"
        assert spec["kind"] == "list"
        assert spec["srcType"] == "ArrayList"
        assert spec["ops"]["#add"] == [18.0, 18.0]
        # unbounded contains count exports hi=None (JSON-safe)
        assert spec["ops"]["#contains"][1] is None
        assert spec["maxSize"] == [18.0, 18.0]

    def test_syntax_error_reported_not_raised(self):
        report = analyze_source("def broken(:\n", "bad.py")
        assert isinstance(report, InterprocReport)
        assert any(f.id == "L2-syntax-error" for f in report.findings)
        assert report.sites == []
