"""Property test: inferred intervals are sound over-approximations.

Generates small collection-using programs (straight-line code, constant
loops, opaque branches), executes them concretely under every branch
valuation, and checks that every concrete statistic -- op counts, peak
size, final size -- falls inside the interval the interprocedural
analysis infers for the allocation site.  A violation would mean an
unsound transfer function or loop restoration.
"""

import itertools

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.lint.interproc import analyze_source  # noqa: E402

N_FLAGS = 2

_leaf = st.sampled_from([("add",), ("removefirst",), ("contains",)])


def _block(depth):
    if depth == 0:
        return st.lists(_leaf, min_size=1, max_size=3)
    inner = _block(depth - 1)
    stmt = st.one_of(
        _leaf,
        st.tuples(st.just("loop"), st.integers(0, 4), inner),
        st.tuples(st.just("if"), st.integers(0, N_FLAGS - 1),
                  inner, inner),
    )
    return st.lists(stmt, min_size=1, max_size=4)


programs = _block(2)


def render(stmts):
    flags = ", ".join(f"f{i}" for i in range(N_FLAGS))
    lines = ["from repro.collections import ChameleonList", "",
             f"def run(vm, {flags}):",
             "    buffer = ChameleonList(vm)"]

    def emit(block, pad):
        for stmt in block:
            if stmt[0] == "add":
                lines.append(f"{pad}buffer.add(1)")
            elif stmt[0] == "removefirst":
                lines.append(f"{pad}if buffer.size() > 0:")
                lines.append(f"{pad}    buffer.remove_first()")
            elif stmt[0] == "contains":
                lines.append(f"{pad}buffer.contains(1)")
            elif stmt[0] == "loop":
                _tag, trips, body = stmt
                lines.append(f"{pad}for i in range({trips}):")
                emit(body, pad + "    ")
            else:
                _tag, flag, then_body, else_body = stmt
                lines.append(f"{pad}if f{flag}:")
                emit(then_body, pad + "    ")
                lines.append(f"{pad}else:")
                emit(else_body, pad + "    ")

    emit(stmts, "    ")
    lines.append("    return buffer")
    return "\n".join(lines) + "\n"


def simulate(stmts, flags):
    """Concrete run: returns (op_counts, peak_size, final_size)."""
    counts = {"#add": 0, "#removeFirst": 0, "#contains": 0, "#size": 0}
    size = 0
    peak = 0

    def run(block):
        nonlocal size, peak
        for stmt in block:
            if stmt[0] == "add":
                counts["#add"] += 1
                size += 1
                peak = max(peak, size)
            elif stmt[0] == "removefirst":
                counts["#size"] += 1
                if size > 0:
                    counts["#removeFirst"] += 1
                    size -= 1
            elif stmt[0] == "contains":
                counts["#contains"] += 1
            elif stmt[0] == "loop":
                for _ in range(stmt[1]):
                    run(stmt[2])
            else:
                run(stmt[2] if flags[stmt[1]] else stmt[3])

    run(stmts)
    return counts, peak, size


def contains(interval, value):
    return interval.lo - 1e-9 <= value <= interval.hi + 1e-9


@settings(max_examples=60, deadline=None)
@given(programs)
def test_concrete_runs_fall_inside_inferred_intervals(stmts):
    source = render(stmts)
    report = analyze_source(source, "src/repro/workloads/prop.py")
    (site,) = [s for s in report.sites if s.variable == "buffer"]
    for flags in itertools.product([False, True], repeat=N_FLAGS):
        counts, peak, final = simulate(stmts, flags)
        for dsl, concrete in counts.items():
            inferred = site.ops.get(dsl)
            assert inferred is not None, f"missing op interval {dsl}"
            assert contains(inferred, concrete), \
                f"{dsl}: concrete {concrete} outside {inferred}\n{source}"
        assert contains(site.max_size, peak), \
            f"peak {peak} outside {site.max_size}\n{source}"
        assert contains(site.size, final), \
            f"final {final} outside {site.size}\n{source}"
