"""Interval domain: three-valued analysis of rule conditions.

The hypothesis property at the bottom pins the domain's soundness
contract against a concrete evaluator: a FALSE verdict means *no*
admissible valuation satisfies the condition, a TRUE verdict means
*every* one does.  Valuations are non-negative integers, matching the
metric schema (every identifier is a count, size or byte aggregate).
"""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.intervals import (EMPTY, Interval, NON_NEGATIVE, TOP, Tri,
                                  analyze_condition, canonical_ref)
from repro.rules.ast import (AndCond, BinaryOp, Comparison, NotCond,
                             Number, OrCond)
from repro.rules.parser import parse_condition


def analyze(text, constants=None):
    return analyze_condition(parse_condition(text), constants)


class TestIntervalArithmetic:
    def test_add(self):
        assert Interval(1, 2) + Interval(3, 4) == Interval(4, 6)

    def test_sub_flips_bounds(self):
        assert Interval(1, 2) - Interval(3, 4) == Interval(-3, -1)

    def test_mul_zero_absorbs_infinity(self):
        assert Interval(0, 0) * TOP == Interval(0, 0)

    def test_division_straddling_zero_is_top(self):
        assert Interval(1, 2).divided_by(Interval(-1, 1)) == TOP

    def test_intersect_empty(self):
        assert Interval(0, 1).intersect(Interval(2, 3)).is_empty
        assert EMPTY.is_empty and not NON_NEGATIVE.is_empty


class TestUnsatisfiable:
    def test_negative_bound(self):
        assert analyze("maxSize < 0").verdict is Tri.FALSE
        assert not analyze("maxSize < 0").satisfiable

    def test_contradictory_conjunction(self):
        assert analyze("maxSize == 0 & maxSize > 10").verdict is Tri.FALSE

    def test_contradiction_through_constants(self):
        verdict = analyze("maxSize < LO & maxSize > HI",
                          constants={"LO": 5, "HI": 10}).verdict
        assert verdict is Tri.FALSE

    def test_point_contradiction(self):
        assert analyze("#add == 3 & #add == 4").verdict is Tri.FALSE

    def test_relational_fact_violation(self):
        # deadInstances <= instances is a schema invariant.
        assert analyze("instances < deadInstances").verdict is Tri.FALSE

    def test_negated_tautology(self):
        assert analyze("!(maxSize >= 0)").verdict is Tri.FALSE


class TestTautology:
    def test_non_negative_base(self):
        analysis = analyze("maxSize >= 0")
        assert analysis.verdict is Tri.TRUE and analysis.tautological

    def test_relational_fact(self):
        assert analyze("size <= maxSize").verdict is Tri.TRUE

    def test_alias_equality(self):
        # avgMaxSize is an alias of maxSize in the schema.
        assert analyze("avgMaxSize == maxSize").verdict is Tri.TRUE

    def test_disjunction_with_true_arm(self):
        assert analyze("instances >= 0 | #add > 5").verdict is Tri.TRUE

    def test_negated_unsat(self):
        assert analyze("!(maxSize < 0)").verdict is Tri.TRUE


class TestContingent:
    def test_threshold_comparison(self):
        analysis = analyze("maxSize < 12")
        assert analysis.verdict is Tri.UNKNOWN
        assert analysis.satisfiable and not analysis.tautological

    def test_refined_conjunction_not_circular(self):
        # Refinement assumes its own conjuncts; trusting it for TRUE
        # would declare every satisfiable conjunction a tautology.
        assert analyze("maxSize >= 5 & maxSize >= 3").verdict \
            is Tri.UNKNOWN

    def test_unknown_constant_degrades_to_top(self):
        analysis = analyze("maxSize < NO_SUCH_CONSTANT")
        assert analysis.verdict is Tri.UNKNOWN

    def test_division_by_possibly_zero(self):
        assert analyze("#add / #remove > 0").verdict is Tri.UNKNOWN


# ----------------------------------------------------------------------
# Soundness property: interval verdicts vs a concrete evaluator
# ----------------------------------------------------------------------
_IDENTS = ("#add", "#contains", "instances", "initialCapacity",
           "swaps", "liveCount")
# None of these participate in _ORDER_LE facts or aliases with each
# other, so independent valuations are admissible.
_KEYS = {ident: canonical_ref(parse_condition(f"{ident} >= 0").left)
         for ident in _IDENTS}

_COMPARE = {"<": operator.lt, "<=": operator.le, ">": operator.gt,
            ">=": operator.ge, "==": operator.eq, "!=": operator.ne}
_ARITH = {"+": operator.add, "-": operator.sub, "*": operator.mul}


def _concrete_expr(expr, valuation):
    if isinstance(expr, Number):
        return expr.value
    key = canonical_ref(expr)
    if key is not None:
        return valuation[key]
    assert isinstance(expr, BinaryOp)
    return _ARITH[expr.operator](_concrete_expr(expr.left, valuation),
                                 _concrete_expr(expr.right, valuation))


def _concrete(condition, valuation):
    if isinstance(condition, Comparison):
        return _COMPARE[condition.operator](
            _concrete_expr(condition.left, valuation),
            _concrete_expr(condition.right, valuation))
    if isinstance(condition, AndCond):
        return (_concrete(condition.left, valuation)
                and _concrete(condition.right, valuation))
    if isinstance(condition, OrCond):
        return (_concrete(condition.left, valuation)
                or _concrete(condition.right, valuation))
    assert isinstance(condition, NotCond)
    return not _concrete(condition.operand, valuation)


_atom = st.one_of(st.sampled_from(_IDENTS),
                  st.integers(0, 8).map(str))
_expr = st.one_of(
    _atom,
    st.builds("({} {} {})".format, _atom,
              st.sampled_from(sorted(_ARITH)), _atom))
_comparison = st.builds("{} {} {}".format, _expr,
                        st.sampled_from(sorted(_COMPARE)), _expr)
_condition = st.recursive(
    _comparison,
    lambda inner: st.one_of(
        st.builds("({}) & ({})".format, inner, inner),
        st.builds("({}) | ({})".format, inner, inner),
        inner.map("!({})".format)),
    max_leaves=4)
_valuation = st.fixed_dictionaries(
    {key: st.integers(0, 6) for key in _KEYS.values()})


@settings(max_examples=300, deadline=None)
@given(text=_condition, valuation=_valuation)
def test_interval_verdicts_sound(text, valuation):
    condition = parse_condition(text)
    verdict = analyze_condition(condition, constants={}).verdict
    actual = _concrete(condition, valuation)
    if verdict is Tri.FALSE:
        assert actual is False, (
            f"{text!r} declared unsatisfiable but {valuation} satisfies it")
    elif verdict is Tri.TRUE:
        assert actual is True, (
            f"{text!r} declared tautological but {valuation} falsifies it")
