"""Planted-defect suite: a rules file with one known defect per line.

Pins the end-to-end Layer 1 path (``load_rules_file`` -> ``check_rules``)
on the four defect classes the issue calls out, asserting both the
finding id and the exact file/line span each is reported at.
"""

import os

import pytest

from repro.lint.findings import Severity
from repro.lint.rule_checker import check_rules, load_rules_file
from repro.rules.parser import ParseError

RULES_FILE = os.path.join(os.path.dirname(__file__),
                          "planted_defects.rules")

# (finding id, line in planted_defects.rules, message fragment)
PLANTED = [
    ("L1-unknown-constant", 3, "NO_SUCH_CONST"),
    ("L1-unsatisfiable", 4, "never fire"),
    ("L1-shadowed-duplicate", 6, "duplicate of earlier rule"),
    ("L1-unknown-impl", 7, "FrobMap"),
]


@pytest.fixture(scope="module")
def findings():
    return check_rules(load_rules_file(RULES_FILE))


def test_specs_carry_file_origins():
    specs = load_rules_file(RULES_FILE)
    assert [spec.origin for spec in specs] == [
        (RULES_FILE, line) for line in (3, 4, 5, 6, 7)]
    assert specs[0].name == "planted_defects:3"


@pytest.mark.parametrize("finding_id,line,fragment", PLANTED)
def test_each_planted_defect_is_reported(findings, finding_id, line,
                                         fragment):
    matching = [f for f in findings
                if f.id == finding_id and f.span.line == line]
    assert matching, (
        f"{finding_id} not reported at {RULES_FILE}:{line}; got "
        + ", ".join(f"{f.id}@{f.span.line}" for f in findings))
    finding = matching[0]
    assert finding.span.file == RULES_FILE
    assert fragment in finding.message


def test_planted_errors_are_errors(findings):
    by_id = {f.id: f for f in findings}
    for finding_id in ("L1-unknown-constant", "L1-unsatisfiable",
                      "L1-unknown-impl", "L1-shadowed-duplicate"):
        assert by_id[finding_id].severity is Severity.ERROR, finding_id


def test_parse_error_carries_file_and_line(tmp_path):
    path = tmp_path / "broken.rules"
    path.write_text("// fine\nHashSet : maxSize < 2 ArraySet\n")
    with pytest.raises(ParseError) as excinfo:
        load_rules_file(str(path))
    assert str(path) + ":2:" in str(excinfo.value)
    assert excinfo.value.column == len("HashSet : maxSize < 2 ") + 1
