"""Layer 1 checker over the builtin Table 2 rule set and crafted sets."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.findings import RuleValidationError, Severity
from repro.lint.intervals import analyze_condition
from repro.lint.rule_checker import (check_rules, overlap_report,
                                     validate_rules)
from repro.rules.builtin import BUILTIN_RULES, DEFAULT_CONSTANTS, RuleSpec
from repro.rules.suggestions import RuleCategory

GOLDEN = os.path.join(os.path.dirname(__file__),
                      "golden_builtin_overlap.txt")


def spec(text, name="r"):
    return RuleSpec.parse(name, text, RuleCategory.SPACE, "msg")


def ids_of(findings):
    return {finding.id for finding in findings}


class TestBuiltinRuleHygiene:
    """The shipped rule set must self-lint clean of errors."""

    def test_no_errors(self):
        findings = check_rules(BUILTIN_RULES)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors == []

    def test_no_unsat_or_tautology(self):
        found = ids_of(check_rules(BUILTIN_RULES))
        assert "L1-unsatisfiable" not in found
        assert "L1-tautology" not in found

    def test_validate_rules_accepts_builtins(self):
        validate_rules(BUILTIN_RULES)  # must not raise

    @pytest.mark.parametrize(
        "rule_spec", BUILTIN_RULES, ids=[s.name for s in BUILTIN_RULES])
    def test_every_builtin_condition_satisfiable(self, rule_spec):
        analysis = analyze_condition(rule_spec.rule.condition,
                                     DEFAULT_CONSTANTS)
        assert analysis.satisfiable, rule_spec.name
        assert not analysis.tautological, rule_spec.name

    @settings(max_examples=50, deadline=None)
    @given(scale=st.integers(1, 8))
    def test_satisfiability_stable_under_threshold_scaling(self, scale):
        """Scaling every threshold preserves the constants' relative
        order, so no builtin rule may become unsatisfiable."""
        constants = {name: value * scale
                     for name, value in DEFAULT_CONSTANTS.items()}
        for rule_spec in BUILTIN_RULES:
            analysis = analyze_condition(rule_spec.rule.condition,
                                         constants)
            assert analysis.satisfiable, (rule_spec.name, scale)

    def test_golden_overlap_report(self):
        """Pinned pairwise overlap/shadowing structure of the builtin
        set.  Regenerate deliberately when the rules change:

            PYTHONPATH=src python -c "
            from repro.lint.rule_checker import overlap_report
            from repro.rules.builtin import BUILTIN_RULES
            print(overlap_report(BUILTIN_RULES), end='')" \\
                > tests/lint/golden_builtin_overlap.txt
        """
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            expected = handle.read()
        assert overlap_report(BUILTIN_RULES) == expected


class TestReferenceChecks:
    def test_unknown_constant(self):
        findings = check_rules([spec("HashMap : maxSize < NOPE -> ArrayMap")])
        assert "L1-unknown-constant" in ids_of(findings)

    def test_unknown_data_identifier(self):
        # The parser resolves unknown lowercase identifiers to ConstRef,
        # so an off-schema DataRef can only come from an AST-built rule.
        import dataclasses

        from repro.rules.ast import Comparison, DataRef, Number

        base = spec("HashMap : maxSize > 1 -> ArrayMap")
        bad_rule = dataclasses.replace(
            base.rule,
            condition=Comparison(">", DataRef("frobCount"), Number(1.0)))
        findings = check_rules([dataclasses.replace(base, rule=bad_rule)])
        assert "L1-unknown-data" in ids_of(findings)

    def test_validate_raises_on_fatal_only(self):
        with pytest.raises(RuleValidationError):
            validate_rules([spec("HashMap : maxSize < NOPE -> ArrayMap")])
        # Unsatisfiable is a lint error but not a construction blocker.
        validate_rules([spec("HashMap : maxSize < 0 -> ArrayMap")])


class TestActionChecks:
    def test_unknown_impl(self):
        findings = check_rules([spec("HashMap : maxSize > 0 -> FrobMap")])
        assert "L1-unknown-impl" in ids_of(findings)

    def test_kind_mismatch(self):
        findings = check_rules([spec("HashSet : maxSize > 0 -> ArrayMap")])
        assert "L1-kind-mismatch" in ids_of(findings)

    def test_unknown_src_type(self):
        findings = check_rules([spec("FrobSet : maxSize > 0 -> ArraySet")])
        assert "L1-unknown-src-type" in ids_of(findings)

    def test_capacity_on_capacity_ignoring_impl(self):
        findings = check_rules(
            [spec("ArrayList : maxSize > 0 -> LinkedList(32)")])
        assert "L1-capacity-ignored" in ids_of(findings)

    def test_clean_rule_has_no_findings(self):
        findings = check_rules(
            [spec("HashMap : maxSize < SMALL_SIZE & maxSize > 0 "
                  "-> ArrayMap")])
        assert findings == []


class TestOverlapChecks:
    def test_exact_duplicate_with_conflicting_targets_is_error(self):
        findings = check_rules([
            spec("HashSet : maxSize < SMALL_SIZE -> ArraySet", name="a"),
            spec("HashSet : maxSize < SMALL_SIZE -> LinkedHashSet",
                 name="b")])
        dup = [f for f in findings if f.id == "L1-shadowed-duplicate"]
        assert len(dup) == 1
        assert dup[0].severity is Severity.ERROR
        assert dup[0].rule_name == "b"

    def test_exact_duplicate_same_target_is_warning(self):
        findings = check_rules([
            spec("HashSet : maxSize < SMALL_SIZE -> ArraySet", name="a"),
            spec("HashSet : maxSize < SMALL_SIZE -> ArraySet", name="b")])
        dup = [f for f in findings if f.id == "L1-shadowed-duplicate"]
        assert dup and dup[0].severity is Severity.WARNING

    def test_overlap_with_conflicting_targets(self):
        findings = check_rules([
            spec("HashSet : maxSize < SMALL_SIZE -> ArraySet", name="a"),
            spec("HashSet : maxSize < LARGE_SIZE -> LinkedHashSet",
                 name="b")])
        assert "L1-overlap-conflict" in ids_of(findings)

    def test_disjoint_conditions_do_not_overlap(self):
        findings = check_rules([
            spec("HashSet : maxSize == 0 -> LazySet", name="a"),
            spec("HashSet : maxSize > 0 & maxSize < SMALL_SIZE "
                 "-> ArraySet", name="b")])
        assert not any(f.id.startswith("L1-overlap") for f in findings)

    def test_disjoint_types_do_not_overlap(self):
        findings = check_rules([
            spec("HashSet : maxSize < SMALL_SIZE -> ArraySet", name="a"),
            spec("HashMap : maxSize < SMALL_SIZE -> ArrayMap", name="b")])
        assert not any(f.id.startswith("L1-overlap") for f in findings)
