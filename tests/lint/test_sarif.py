"""SARIF 2.1.0 emitter: structure, levels, and schema validation."""

import json

import pytest

from repro.lint.findings import Finding, Severity, Span
from repro.lint.sarif import (SARIF_CORE_SCHEMA, SARIF_VERSION, emit_sarif,
                              validate_sarif)


@pytest.fixture()
def sample_findings():
    return [
        Finding(id="L1-unsatisfiable", severity=Severity.ERROR,
                message="condition is unsatisfiable",
                span=Span(file="custom.rules", line=4),
                rule_name="custom:4"),
        Finding(id="L2-growth-no-capacity", severity=Severity.WARNING,
                message="'buffer' grows inside a loop",
                span=Span(file="src/repro/workloads/tvla.py", line=192),
                fix_hint="pass initial_capacity= at the allocation",
                context="ArrayList:repro.workloads.tvla.run:192",
                predicted_rule="incremental-resizing"),
        Finding(id="L3-drift-agreement", severity=Severity.NOTE,
                message="static prediction confirmed",
                span=Span(file="src/repro/workloads/tvla.py", line=163)),
    ]


class TestEmitter:
    def test_validates_against_2_1_0(self, sample_findings):
        assert validate_sarif(emit_sarif(sample_findings)) == []

    def test_structure(self, sample_findings):
        document = json.loads(emit_sarif(sample_findings))
        assert document["version"] == SARIF_VERSION == "2.1.0"
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "chameleon-lint"
        assert len(run["results"]) == 3
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert set(rule_ids) >= {f.id for f in sample_findings}

    def test_levels_map_to_severities(self, sample_findings):
        document = json.loads(emit_sarif(sample_findings))
        levels = {result["ruleId"]: result["level"]
                  for result in document["runs"][0]["results"]}
        assert levels["L1-unsatisfiable"] == "error"
        assert levels["L2-growth-no-capacity"] == "warning"
        assert levels["L3-drift-agreement"] == "note"

    def test_result_points_back_into_the_rules_array(self, sample_findings):
        document = json.loads(emit_sarif(sample_findings))
        run = document["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_locations_and_hints(self, sample_findings):
        document = json.loads(emit_sarif(sample_findings))
        result = next(r for r in document["runs"][0]["results"]
                      if r["ruleId"] == "L2-growth-no-capacity")
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == \
            "src/repro/workloads/tvla.py"
        assert location["region"]["startLine"] == 192
        assert "hint:" in result["message"]["text"]
        assert result["properties"]["predictedRule"] == \
            "incremental-resizing"

    def test_zero_line_clamped_to_one(self):
        finding = Finding(id="L3-dynamic-only", severity=Severity.NOTE,
                          message="m", span=Span(file="<session>", line=0))
        document = json.loads(emit_sarif([finding]))
        region = (document["runs"][0]["results"][0]["locations"][0]
                  ["physicalLocation"]["region"])
        assert region["startLine"] == 1

    def test_empty_findings_still_valid(self):
        assert validate_sarif(emit_sarif([])) == []


class TestValidator:
    def test_rejects_wrong_version(self, sample_findings):
        document = json.loads(emit_sarif(sample_findings))
        document["version"] = "2.0.0"
        assert any("version" in problem
                   for problem in validate_sarif(document))

    def test_rejects_missing_message(self, sample_findings):
        document = json.loads(emit_sarif(sample_findings))
        del document["runs"][0]["results"][0]["message"]
        assert validate_sarif(document)

    def test_rejects_bad_level(self, sample_findings):
        document = json.loads(emit_sarif(sample_findings))
        document["runs"][0]["results"][0]["level"] = "fatal"
        assert validate_sarif(document)

    def test_jsonschema_cross_check(self, sample_findings):
        # Belt and braces where the real validator is installed; the CI
        # image only has pytest/hypothesis/numpy, so skip gracefully.
        jsonschema = pytest.importorskip("jsonschema")
        document = json.loads(emit_sarif(sample_findings))
        jsonschema.validate(document, SARIF_CORE_SCHEMA)
        document["runs"][0]["results"][0]["level"] = "fatal"
        with pytest.raises(jsonschema.ValidationError):
            jsonschema.validate(document, SARIF_CORE_SCHEMA)
