"""Layer 2 usage linter: AST facts, factories, escapes, waivers."""

import textwrap

from repro.lint.usage import lint_paths, lint_source


def lint(source, path="src/repro/workloads/example.py"):
    return lint_source(textwrap.dedent(source), path)


def ids_of(findings):
    return {finding.id for finding in findings}


class TestAllocationFacts:
    def test_never_used(self):
        findings, predictions = lint("""
            def run(vm):
                junk = ChameleonList(vm)
        """)
        assert ids_of(findings) == {"L2-never-used"}
        (finding,) = findings
        assert finding.span.line == 3
        assert finding.context == \
            "ArrayList:repro.workloads.example.run:3"
        (prediction,) = predictions
        assert prediction.predicted_rule == "redundant-collection"
        assert prediction.location == "repro.workloads.example.run"

    def test_contains_in_loop(self):
        findings, predictions = lint("""
            def run(vm, items):
                seen = ChameleonList(vm)
                for item in items:
                    if seen.contains(item):
                        continue
                    seen.add(item)
        """)
        assert "L2-contains-in-loop" in ids_of(findings)
        assert any(p.predicted_rule == "contains-heavy-list"
                   for p in predictions)

    def test_contains_outside_loop_is_fine(self):
        findings, _ = lint("""
            def run(vm, item):
                seen = ChameleonList(vm)
                seen.add(item)
                return seen.contains(item)
        """)
        assert "L2-contains-in-loop" not in ids_of(findings)

    def test_indexed_get_in_loop_on_linked_list(self):
        findings, predictions = lint("""
            def run(vm, n):
                log = ChameleonList(vm, src_type="LinkedList")
                for i in range(n):
                    log.add(i)
                for i in range(n):
                    total = log.get(i)
        """)
        assert "L2-indexed-get-in-loop" in ids_of(findings)
        assert any(p.predicted_rule == "random-access-linked-list"
                   for p in predictions)

    def test_growth_without_capacity(self):
        findings, predictions = lint("""
            def run(vm, n):
                buffer = ChameleonList(vm)
                for i in range(n):
                    buffer.add(i)
                return buffer
        """)
        assert "L2-growth-no-capacity" in ids_of(findings)
        assert any(p.predicted_rule == "incremental-resizing"
                   for p in predictions)

    def test_growth_with_capacity_is_fine(self):
        findings, _ = lint("""
            def run(vm, n):
                buffer = ChameleonList(vm, initial_capacity=256)
                for i in range(n):
                    buffer.add(i)
                return buffer
        """)
        assert "L2-growth-no-capacity" not in ids_of(findings)

    def test_conditional_none_capacity_counts_as_unset(self):
        # The manual-fix idiom: the unfixed arm is what profiling sees.
        findings, _ = lint("""
            def run(vm, n, fixed):
                buffer = ChameleonList(
                    vm, initial_capacity=256 if fixed else None)
                for i in range(n):
                    buffer.add(i)
                return buffer
        """)
        assert "L2-growth-no-capacity" in ids_of(findings)

    def test_never_mutated_note(self):
        findings, _ = lint("""
            def run(vm, fill):
                table = ChameleonMap(vm)
                if fill:
                    pass
                size = len(table)
        """)
        assert "L2-never-mutated" in ids_of(findings)


class TestEscapesAndRebinding:
    def test_escape_suppresses_never_used(self):
        findings, _ = lint("""
            def run(vm, sink):
                table = ChameleonMap(vm)
                sink.append(table)
        """)
        assert "L2-never-used" not in ids_of(findings)

    def test_rebinding_kills_association(self):
        findings, _ = lint("""
            def run(vm, n):
                buffer = ChameleonList(vm)
                buffer.add(1)
                buffer = []
                for i in range(n):
                    buffer.add(i)
        """)
        assert "L2-growth-no-capacity" not in ids_of(findings)


class TestFactoriesAndTemporaries:
    def test_self_factory_resolution(self):
        findings, predictions = lint("""
            class Workload:
                def _make_table(self, vm):
                    return ChameleonMap(vm, src_type="HashMap")

                def run(self, vm, n):
                    table = self._make_table(vm)
                    for i in range(n):
                        table.put(i, i)
                    return table
        """)
        assert "L2-growth-no-capacity" in ids_of(findings)
        (prediction,) = predictions
        assert prediction.src_types == frozenset({"HashMap"})
        assert prediction.location == "repro.workloads.example.run"

    def test_pin_chain_unwrapped(self):
        findings, _ = lint("""
            def run(vm):
                junk = ChameleonSet(vm).pin()
        """)
        assert "L2-never-used" in ids_of(findings)

    def test_if_exp_src_type_gives_candidate_set(self):
        _, predictions = lint("""
            def run(vm, n, linked):
                buffer = ChameleonList(
                    vm,
                    src_type="LinkedList" if linked else "ArrayList")
                for i in range(n):
                    buffer.add(i)
                return buffer
        """)
        (prediction,) = predictions
        assert prediction.src_types == frozenset(
            {"ArrayList", "LinkedList"})

    def test_iterated_factory_temporary(self):
        findings, _ = lint("""
            def make_items(vm):
                return ChameleonList(vm)

            def run(vm):
                for item in make_items(vm).iterate():
                    print(item)
        """)
        assert "L2-temporary-iterated" in ids_of(findings)


class TestInfrastructure:
    def test_waiver_comment_suppresses(self):
        findings, _ = lint("""
            def run(vm):
                junk = ChameleonList(vm)  # lint: ignore[L2-never-used]
        """)
        assert findings == []

    def test_star_waiver_suppresses_all(self):
        findings, _ = lint("""
            def run(vm, n):
                buffer = ChameleonList(vm)  # lint: ignore[*]
                for i in range(n):
                    buffer.add(i)
                return buffer
        """)
        assert findings == []

    def test_syntax_error_is_a_finding(self):
        findings, predictions = lint_source("def broken(:\n", "bad.py")
        assert ids_of(findings) == {"L2-syntax-error"}
        assert predictions == []

    def test_lint_paths_walks_directories(self, tmp_path):
        package = tmp_path / "repro" / "workloads"
        package.mkdir(parents=True)
        (package / "one.py").write_text(
            "def run(vm):\n    junk = ChameleonList(vm)\n")
        (package / "notes.txt").write_text("not python\n")
        findings, _ = lint_paths([str(tmp_path)])
        (finding,) = findings
        assert finding.id == "L2-never-used"
        assert finding.span.file.endswith("one.py")
        assert "repro.workloads.one.run" in finding.context

    def test_self_lint_workloads_has_no_errors(self):
        # The repository's own workloads must lint without errors (the
        # CI leg runs exactly this through the CLI).
        import os

        from repro.lint.findings import Severity

        workloads = os.path.join(os.path.dirname(__file__), os.pardir,
                                 os.pardir, "src", "repro", "workloads")
        findings, predictions = lint_paths([workloads])
        assert all(f.severity is not Severity.ERROR for f in findings)
        assert predictions  # the tvla/fop facts the drift test relies on


class TestCapacityConstProp:
    """Regression: ``initial_capacity=`` through named constants.

    The walker resolves module constants, class constants (including
    ``self.X = ...``), local assignments and keyword defaults before
    deciding whether a capacity is reliably set; a constant that
    resolves to ``None`` is *unset* (the profiler sees the default
    growth path), and an unresolvable name stays conservatively set.
    """

    def test_module_constant_counts_as_set(self):
        findings, _ = lint("""
            CAP = 64

            def run(vm, n):
                buffer = ChameleonList(vm, initial_capacity=CAP)
                for i in range(n):
                    buffer.add(i)
                return buffer
        """)
        assert "L2-growth-no-capacity" not in ids_of(findings)

    def test_module_constant_none_counts_as_unset(self):
        findings, _ = lint("""
            CAP = None

            def run(vm, n):
                buffer = ChameleonList(vm, initial_capacity=CAP)
                for i in range(n):
                    buffer.add(i)
                return buffer
        """)
        assert "L2-growth-no-capacity" in ids_of(findings)

    def test_keyword_default_none_counts_as_unset(self):
        findings, _ = lint("""
            def run(vm, n, cap=None):
                buffer = ChameleonList(vm, initial_capacity=cap)
                for i in range(n):
                    buffer.add(i)
                return buffer
        """)
        assert "L2-growth-no-capacity" in ids_of(findings)

    def test_self_attribute_constant_resolves(self):
        findings, _ = lint("""
            class Job:
                def __init__(self):
                    self.cap = None

                def run(self, vm, n):
                    buffer = ChameleonList(vm, initial_capacity=self.cap)
                    for i in range(n):
                        buffer.add(i)
                    return buffer
        """)
        assert "L2-growth-no-capacity" in ids_of(findings)

    def test_conditional_constant_chain(self):
        findings, _ = lint("""
            SIZE = 128

            def run(vm, n, fixed):
                cap = SIZE if fixed else None
                buffer = ChameleonList(vm, initial_capacity=cap)
                for i in range(n):
                    buffer.add(i)
                return buffer
        """)
        assert "L2-growth-no-capacity" in ids_of(findings)

    def test_unresolvable_name_stays_conservative(self):
        findings, _ = lint("""
            from repro.config import CAP

            def run(vm, n):
                buffer = ChameleonList(vm, initial_capacity=CAP)
                for i in range(n):
                    buffer.add(i)
                return buffer
        """)
        assert "L2-growth-no-capacity" not in ids_of(findings)
