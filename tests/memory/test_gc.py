"""Mark-sweep collector: reachability, death hooks, and ADT accounting."""

import pytest

from repro.memory.gc import GcCostParameters, MarkSweepGC
from repro.memory.heap import SimHeap
from repro.memory.layout import MemoryModel
from repro.memory.semantic_maps import FootprintTriple, SemanticMapRegistry


@pytest.fixture
def heap():
    return SimHeap(MemoryModel.for_32bit())


@pytest.fixture
def gc(heap):
    return MarkSweepGC(heap)


class _FakeAdt:
    """Minimal AdtFootprint payload for accounting tests."""

    def __init__(self, live, used, core, internal_ids=(), count=0):
        self._triple = FootprintTriple(live, used, core)
        self._internal = list(internal_ids)
        self._count = count

    def adt_footprint(self):
        return self._triple

    def adt_internal_ids(self):
        return iter(self._internal)

    def adt_element_count(self):
        return self._count


class TestReachability:
    def test_unreachable_objects_are_swept(self, heap, gc):
        root = heap.allocate("Root", 16)
        heap.add_root(root)
        garbage = heap.allocate("Garbage", 16)
        stats = gc.collect()
        assert heap.contains(root.obj_id)
        assert not heap.contains(garbage.obj_id)
        assert stats.freed_objects == 1
        assert stats.freed_bytes == 16

    def test_transitive_closure_is_kept(self, heap, gc):
        a = heap.allocate("A", 8)
        b = heap.allocate("B", 8)
        c = heap.allocate("C", 8)
        heap.add_root(a)
        a.add_ref(b.obj_id)
        b.add_ref(c.obj_id)
        gc.collect()
        assert all(heap.contains(o.obj_id) for o in (a, b, c))

    def test_reference_cycles_are_collected(self, heap, gc):
        """Mark-sweep, unlike refcounting, reclaims cycles."""
        a = heap.allocate("A", 8)
        b = heap.allocate("B", 8)
        a.add_ref(b.obj_id)
        b.add_ref(a.obj_id)
        gc.collect()
        assert len(heap) == 0

    def test_rooted_cycle_survives(self, heap, gc):
        a = heap.allocate("A", 8)
        b = heap.allocate("B", 8)
        a.add_ref(b.obj_id)
        b.add_ref(a.obj_id)
        heap.add_root(a)
        gc.collect()
        assert len(heap) == 2

    def test_dangling_refs_to_swept_objects_are_ignored(self, heap, gc):
        root = heap.allocate("Root", 8)
        heap.add_root(root)
        dead = heap.allocate("Dead", 8)
        gc.collect()  # sweeps `dead`
        root.add_ref(dead.obj_id)  # stale edge
        stats = gc.collect()  # must not crash on the dangling id
        assert stats.live_data == 8

    def test_live_bytes_estimate_does_not_sweep(self, heap, gc):
        root = heap.allocate("Root", 16)
        heap.add_root(root)
        heap.allocate("Garbage", 16)
        assert gc.live_bytes_estimate() == 16
        assert len(heap) == 2  # nothing swept


class TestLiveBytesEstimateCache:
    """The estimate is cached on the heap's mutation stamp: exact after
    *every* kind of heap mutation, recomputed only when one happened."""

    def _fresh_mark_bytes(self, heap, gc):
        return sum(heap.get(obj_id).size for obj_id in gc._mark())

    def test_exact_across_every_mutation_kind(self, heap, gc):
        a = heap.allocate("A", 16)
        b = heap.allocate("B", 24)
        c = heap.allocate("C", 48)
        heap.add_root(a)
        assert gc.live_bytes_estimate() == 16

        a.add_ref(b.obj_id)                       # edge added
        assert gc.live_bytes_estimate() == 40
        heap.add_root(c)                          # root added
        assert gc.live_bytes_estimate() == 88
        heap.remove_root(c)                       # root removed
        assert gc.live_bytes_estimate() == 40
        a.remove_ref(b.obj_id)                    # edge removed
        assert gc.live_bytes_estimate() == 16
        a.add_ref(b.obj_id)
        a.add_ref(c.obj_id)
        a.clear_refs()                            # edges cleared
        assert gc.live_bytes_estimate() == 16
        gc.collect()                              # frees b and c
        assert gc.live_bytes_estimate() == 16
        heap.allocate("D", 8)                     # allocation (unrooted)
        assert gc.live_bytes_estimate() == 16
        assert gc.live_bytes_estimate() == self._fresh_mark_bytes(heap, gc)

    def test_cache_hit_skips_the_mark(self, heap, gc, monkeypatch):
        root = heap.allocate("Root", 16)
        heap.add_root(root)
        calls = []
        original_mark = gc._mark

        def counting_mark():
            calls.append(1)
            return original_mark()

        monkeypatch.setattr(gc, "_mark", counting_mark)
        assert gc.live_bytes_estimate() == 16
        assert gc.live_bytes_estimate() == 16
        assert len(calls) == 1  # second call served from the cache
        root.add_ref(heap.allocate("Child", 8).obj_id)
        assert gc.live_bytes_estimate() == 24
        assert len(calls) == 2  # mutation invalidated it


class TestDeathHooks:
    def test_hook_runs_on_sweep(self, heap, gc):
        deaths = []
        obj = heap.allocate("A", 8, on_death=deaths.append)
        gc.collect()
        assert deaths == [obj]

    def test_hook_not_run_while_live(self, heap, gc):
        deaths = []
        obj = heap.allocate("A", 8, on_death=deaths.append)
        heap.add_root(obj)
        gc.collect()
        assert deaths == []


class TestDeathHookReentrancy:
    """Hooks that mutate the heap mid-sweep (the paper's selective-
    finalizer analog) must not corrupt the freed accounting or the
    live-set/free-list split."""

    def test_hook_allocation_survives_the_cycle(self, heap, gc):
        born = []

        def resurrect(obj):
            born.append(heap.allocate("Phoenix", 32))

        heap.allocate("Dying", 16, on_death=resurrect)
        stats = gc.collect()
        assert stats.freed_objects == 1
        assert stats.freed_bytes == 16
        assert len(born) == 1
        assert heap.contains(born[0].obj_id)  # snapshot: not swept now
        assert heap.total_freed_objects == 1
        assert heap.total_freed_bytes == 16

    def test_hook_freeing_another_dead_object_counts_once(self, heap, gc):
        partner_of = {}

        def free_partner(obj):
            partner = partner_of[obj.obj_id]
            if heap.contains(partner.obj_id):
                heap.free(partner)

        a = heap.allocate("A", 16, on_death=free_partner)
        b = heap.allocate("B", 16, on_death=free_partner)
        partner_of[a.obj_id] = b
        partner_of[b.obj_id] = a
        stats = gc.collect()
        assert len(heap) == 0
        # Whichever the sweeper yielded first freed the other via its
        # hook; the sweeper then skips the already-freed one, so each
        # object is accounted exactly once.
        assert stats.freed_objects == 1
        assert stats.freed_bytes == 16
        assert heap.total_freed_objects == 2
        assert heap.total_freed_bytes == 32

    def test_free_list_stays_consistent_across_cycles(self, heap, gc):
        spawned = []

        def spawn(obj):
            spawned.append(heap.allocate("Spawn", 8))

        root = heap.allocate("Root", 8)
        heap.add_root(root)
        for _ in range(3):
            heap.allocate("Dying", 8, on_death=spawn)
        first = gc.collect()
        assert first.freed_objects == 3
        assert all(heap.contains(obj.obj_id) for obj in spawned)
        # The hook-born objects are unreachable; the next cycle reclaims
        # them cleanly -- no stale free-list state survives.
        second = gc.collect()
        assert second.freed_objects == 3
        assert heap.total_freed_objects == 6
        assert heap.contains(root.obj_id)
        assert len(heap) == 1

    def test_collecting_flag_set_only_during_sweep(self, heap, gc):
        seen = []
        heap.allocate("Dying", 8,
                      on_death=lambda obj: seen.append(gc.collecting))
        assert gc.collecting is False
        gc.collect()
        assert seen == [True]
        assert gc.collecting is False


class TestCycleStats:
    def test_live_data_sums_reachable_sizes(self, heap, gc):
        root = heap.allocate("Root", 24)
        heap.add_root(root)
        child = heap.allocate("Child", 40)
        root.add_ref(child.obj_id)
        heap.allocate("Garbage", 100)
        stats = gc.collect()
        assert stats.live_data == 64

    def test_cycle_numbering_and_timeline(self, heap, gc):
        first = gc.collect(tick=10)
        second = gc.collect(tick=20)
        assert (first.cycle, second.cycle) == (1, 2)
        assert gc.timeline.cycle_count == 2
        assert gc.timeline.cycles[0].tick == 10

    def test_type_distribution_for_plain_objects(self, heap, gc):
        root = heap.allocate("Root", 8)
        heap.add_root(root)
        for _ in range(3):
            child = heap.allocate("Widget", 16)
            root.add_ref(child.obj_id)
        stats = gc.collect()
        assert stats.type_distribution["Widget"] == 48
        assert stats.type_distribution["Root"] == 8


class TestAdtAccounting:
    def _anchor_with_internals(self, heap):
        internal = heap.allocate("Object[]", 40)
        anchor = heap.allocate("FakeList", 24)
        anchor.payload = _FakeAdt(64, 48, 16, [internal.obj_id], count=3)
        anchor.add_ref(internal.obj_id)
        anchor.context_id = 5
        heap.add_root(anchor)
        return anchor, internal

    def test_collection_triple_is_attributed(self, heap, gc):
        self._anchor_with_internals(heap)
        stats = gc.collect()
        assert stats.collection_live == 64
        assert stats.collection_used == 48
        assert stats.collection_core == 16
        assert stats.collection_objects == 1

    def test_internals_are_not_double_counted(self, heap, gc):
        self._anchor_with_internals(heap)
        stats = gc.collect()
        # The backing array is folded into the ADT's type bytes, not
        # listed under its own type.
        assert "Object[]" not in stats.type_distribution
        assert stats.type_distribution["FakeList"] == 64

    def test_per_context_slice(self, heap, gc):
        self._anchor_with_internals(heap)
        stats = gc.collect()
        ctx = stats.per_context[5]
        assert (ctx.live, ctx.used, ctx.core) == (64, 48, 16)
        assert ctx.object_count == 1
        assert ctx.potential == 16

    def test_nested_anchor_claimed_by_owner_is_not_reported(self, heap, gc):
        """A wrapper claiming its backing implementation must yield one
        reported ADT, not two (section 4.3.2's semantic attribution)."""
        inner_internal = heap.allocate("Object[]", 40)
        inner = heap.allocate("ArrayList", 24)
        inner.payload = _FakeAdt(64, 48, 16, [inner_internal.obj_id])
        inner.add_ref(inner_internal.obj_id)
        wrapper = heap.allocate("List", 16)
        wrapper.payload = _FakeAdt(
            80, 64, 16, [inner.obj_id, inner_internal.obj_id])
        wrapper.add_ref(inner.obj_id)
        heap.add_root(wrapper)
        stats = gc.collect()
        assert stats.collection_objects == 1
        assert stats.collection_live == 80

    def test_registry_protocol_can_be_disabled(self, heap):
        registry = SemanticMapRegistry()
        registry.set_protocol_dispatch(False)
        gc = MarkSweepGC(heap, registry)
        self._anchor_with_internals(heap)
        stats = gc.collect()
        assert stats.collection_objects == 0
        # Without semantic maps the array is just an Object[].
        assert "Object[]" in stats.type_distribution


class TestGcCosts:
    def test_collection_charges_the_clock(self, heap):
        charges = []
        gc = MarkSweepGC(heap, charge=charges.append,
                         costs=GcCostParameters(base_ticks=100,
                                                mark_ticks_per_object=10,
                                                sweep_ticks_per_object=1))
        root = heap.allocate("Root", 8)
        heap.add_root(root)
        heap.allocate("Garbage", 8)
        gc.collect()
        # base 100 + 1 marked * 10 + 1 swept * 1
        assert charges == [111]
