"""Property-based mark-sweep correctness over random object graphs.

The invariant the whole reproduction rests on: after a collection,
exactly the root-reachable objects remain.
"""

from hypothesis import given, settings, strategies as st

from repro.memory.gc import MarkSweepGC
from repro.memory.heap import SimHeap


@st.composite
def object_graphs(draw):
    """(object count, edges, roots) for a random directed graph."""
    count = draw(st.integers(min_value=1, max_value=40))
    edges = draw(st.lists(
        st.tuples(st.integers(0, count - 1), st.integers(0, count - 1)),
        max_size=120))
    roots = draw(st.sets(st.integers(0, count - 1), max_size=count))
    return count, edges, roots


def _reachable(count, edges, roots):
    adjacency = {i: [] for i in range(count)}
    for src, dst in edges:
        adjacency[src].append(dst)
    seen = set(roots)
    stack = list(roots)
    while stack:
        node = stack.pop()
        for nxt in adjacency[node]:
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen


@settings(max_examples=120, deadline=None)
@given(graph=object_graphs())
def test_sweep_keeps_exactly_the_reachable_set(graph):
    count, edges, roots = graph
    heap = SimHeap()
    objects = [heap.allocate(f"N{i}", 16) for i in range(count)]
    for src, dst in edges:
        objects[src].add_ref(objects[dst].obj_id)
    for index in roots:
        heap.add_root(objects[index])

    gc = MarkSweepGC(heap)
    stats = gc.collect()

    expected = _reachable(count, edges, roots)
    surviving = {i for i, obj in enumerate(objects)
                 if heap.contains(obj.obj_id)}
    assert surviving == expected
    assert stats.live_data == 16 * len(expected)
    assert stats.freed_objects == count - len(expected)


@settings(max_examples=60, deadline=None)
@given(graph=object_graphs())
def test_collection_is_idempotent(graph):
    """A second collection with unchanged roots frees nothing."""
    count, edges, roots = graph
    heap = SimHeap()
    objects = [heap.allocate(f"N{i}", 16) for i in range(count)]
    for src, dst in edges:
        objects[src].add_ref(objects[dst].obj_id)
    for index in roots:
        heap.add_root(objects[index])
    gc = MarkSweepGC(heap)
    gc.collect()
    second = gc.collect()
    assert second.freed_objects == 0
    assert second.live_data == 16 * len(_reachable(count, edges, roots))


@settings(max_examples=60, deadline=None)
@given(graph=object_graphs(), drop=st.sets(st.integers(0, 39), max_size=40))
def test_unrooting_monotonically_shrinks_live(graph, drop):
    """Removing roots can only shrink the reachable set."""
    count, edges, roots = graph
    heap = SimHeap()
    objects = [heap.allocate(f"N{i}", 16) for i in range(count)]
    for src, dst in edges:
        objects[src].add_ref(objects[dst].obj_id)
    for index in roots:
        heap.add_root(objects[index])
    gc = MarkSweepGC(heap)
    before = gc.collect().live_data
    for index in sorted(roots & {d for d in drop if d < count}):
        heap.remove_root(objects[index])
    after = gc.collect().live_data
    assert after <= before
