"""The generational collector: promotion, floating garbage, costs."""

import pytest

from repro.memory.generational import (GenerationalCostParameters,
                                       GenerationalGC)
from repro.memory.heap import SimHeap
from repro.runtime.vm import RuntimeEnvironment


@pytest.fixture
def heap():
    return SimHeap()


@pytest.fixture
def gc(heap):
    return GenerationalGC(heap, tenure_age=2)


class TestPromotion:
    def test_objects_start_in_nursery(self, heap, gc):
        obj = heap.allocate("A", 16)
        heap.add_root(obj)
        assert not gc.is_tenured(obj.obj_id)

    def test_survivors_are_promoted_at_tenure_age(self, heap, gc):
        obj = heap.allocate("A", 16)
        heap.add_root(obj)
        gc.collect(major=False)
        assert not gc.is_tenured(obj.obj_id)  # age 1 of 2
        gc.collect(major=False)
        assert gc.is_tenured(obj.obj_id)
        assert gc.promoted_objects == 1

    def test_invalid_tenure_age(self, heap):
        with pytest.raises(ValueError):
            GenerationalGC(heap, tenure_age=0)


class TestMinorCycles:
    def test_minor_sweeps_nursery_garbage(self, heap, gc):
        root = heap.allocate("Root", 16)
        heap.add_root(root)
        garbage = heap.allocate("Garbage", 16)
        stats = gc.collect(major=False)
        assert stats.kind == "minor"
        assert not heap.contains(garbage.obj_id)
        assert gc.minor_cycles == 1

    def test_dead_tenured_objects_float_until_major(self, heap, gc):
        obj = heap.allocate("A", 16)
        heap.add_root(obj)
        gc.collect(major=False)
        gc.collect(major=False)  # promoted
        heap.remove_root(obj)
        stats = gc.collect(major=False)
        # Unreachable but tenured: survives the minor cycle...
        assert heap.contains(obj.obj_id)
        assert stats.freed_objects == 0
        # ... and is reclaimed by the next major cycle.
        major = gc.collect(major=True)
        assert not heap.contains(obj.obj_id)
        assert major.freed_objects == 1

    def test_minor_death_hooks_run_for_nursery(self, heap, gc):
        deaths = []
        heap.allocate("A", 16, on_death=deaths.append)
        gc.collect(major=False)
        assert len(deaths) == 1

    def test_minor_records_full_statistics(self, heap, gc):
        root = heap.allocate("Root", 48)
        heap.add_root(root)
        stats = gc.collect(major=False)
        assert stats.live_data == 48
        assert gc.timeline.cycle_count == 1


class TestMajorCycles:
    def test_major_behaves_like_base_collector(self, heap, gc):
        root = heap.allocate("Root", 16)
        heap.add_root(root)
        heap.allocate("Garbage", 16)
        stats = gc.collect(major=True)
        assert stats.kind == "full"
        assert stats.freed_objects == 1
        assert gc.major_cycles == 1

    def test_major_cleans_generation_bookkeeping(self, heap, gc):
        obj = heap.allocate("A", 16)
        heap.add_root(obj)
        gc.collect(major=False)
        gc.collect(major=False)
        heap.remove_root(obj)
        gc.collect(major=True)
        assert not gc.is_tenured(obj.obj_id)


class TestCosts:
    def test_minor_cheaper_than_major_with_big_tenured_set(self, heap):
        charges = []
        gc = GenerationalGC(heap, charge=charges.append, tenure_age=1,
                            costs=GenerationalCostParameters())
        root = heap.allocate("Root", 16)
        heap.add_root(root)
        for _ in range(500):
            child = heap.allocate("Old", 16)
            root.add_ref(child.obj_id)
        gc.collect(major=False)  # tenures everything (age 1)
        charges.clear()
        gc.collect(major=False)
        minor_cost = charges[-1]
        gc.collect(major=True)
        major_cost = charges[-1]
        assert minor_cost < major_cost


class TestVmIntegration:
    def test_collector_factory_plugs_in(self):
        vm = RuntimeEnvironment(gc_threshold_bytes=1024,
                                collector_factory=GenerationalGC)
        assert isinstance(vm.gc, GenerationalGC)
        for _ in range(100):
            vm.allocate("A", 64)
        # Periodic cycles were minor.
        assert vm.gc.minor_cycles >= 5
        assert vm.gc.major_cycles == 0

    def test_heap_pressure_runs_major(self):
        vm = RuntimeEnvironment(heap_limit=4096, gc_threshold_bytes=None,
                                collector_factory=GenerationalGC)
        for _ in range(200):
            vm.allocate("Transient", 64)
        assert vm.gc.major_cycles >= 1

    def test_workload_results_match_base_collector(self):
        """The orthogonality claim at test scale: savings are collector-
        independent."""
        from repro.core.chameleon import Chameleon
        from repro.workloads import TvlaWorkload

        tool = Chameleon()
        workload = TvlaWorkload(scale=0.1)
        session = tool.profile(workload)
        policy = tool.build_policy(session.suggestions)

        def peak(policy_or_none, factory):
            vm = RuntimeEnvironment(collector_factory=factory)
            if policy_or_none is not None:
                vm.policy = policy_or_none.bind(vm)
            workload.run(vm)
            vm.finish()
            return vm.timeline.max_live_data

        from repro.memory.gc import MarkSweepGC
        base_saving = 1 - (peak(policy, MarkSweepGC)
                           / peak(None, MarkSweepGC))
        gen_saving = 1 - (peak(policy, GenerationalGC)
                          / peak(None, GenerationalGC))
        assert abs(base_saving - gen_saving) < 0.08
        assert gen_saving > 0.3
