"""SimHeap: the object store, reference edges, roots and occupancy."""

import pytest

from repro.memory.heap import OutOfMemoryError, SimHeap
from repro.memory.layout import MemoryModel


@pytest.fixture
def heap():
    return SimHeap(MemoryModel.for_32bit())


class TestAllocation:
    def test_allocate_assigns_dense_ids(self, heap):
        a = heap.allocate("A", 16)
        b = heap.allocate("B", 16)
        assert b.obj_id == a.obj_id + 1

    def test_allocate_aligns_defensively(self, heap):
        obj = heap.allocate("A", 13)
        assert obj.size == 16

    def test_negative_size_rejected(self, heap):
        with pytest.raises(ValueError):
            heap.allocate("A", -1)

    def test_accounting_tracks_bytes_and_objects(self, heap):
        heap.allocate("A", 16)
        heap.allocate("B", 32)
        assert heap.total_allocated_bytes == 48
        assert heap.total_allocated_objects == 2
        assert heap.occupied_bytes == 48

    def test_free_updates_accounting(self, heap):
        obj = heap.allocate("A", 24)
        heap.free(obj)
        assert heap.occupied_bytes == 0
        assert heap.total_freed_objects == 1
        assert not heap.contains(obj.obj_id)

    def test_payload_and_context_attached(self, heap):
        marker = object()
        obj = heap.allocate("A", 8, payload=marker, context_id=7)
        assert obj.payload is marker
        assert obj.context_id == 7

    def test_lookup_by_id(self, heap):
        obj = heap.allocate("A", 8)
        assert heap.get(obj.obj_id) is obj
        assert len(heap) == 1


class TestReferenceEdges:
    def test_add_and_remove_single_edge(self, heap):
        a, b = heap.allocate("A", 8), heap.allocate("B", 8)
        a.add_ref(b.obj_id)
        assert b.obj_id in a.refs
        a.remove_ref(b.obj_id)
        assert b.obj_id not in a.refs

    def test_edge_multiplicity(self, heap):
        """A list may reference the same element twice; removing one
        occurrence must keep the edge."""
        a, b = heap.allocate("A", 8), heap.allocate("B", 8)
        a.add_ref(b.obj_id)
        a.add_ref(b.obj_id)
        a.remove_ref(b.obj_id)
        assert a.refs[b.obj_id] == 1

    def test_remove_missing_edge_is_an_error(self, heap):
        a, b = heap.allocate("A", 8), heap.allocate("B", 8)
        with pytest.raises(KeyError):
            a.remove_ref(b.obj_id)

    def test_clear_refs(self, heap):
        a, b, c = (heap.allocate(t, 8) for t in "ABC")
        a.add_ref(b.obj_id)
        a.add_ref(c.obj_id)
        a.clear_refs()
        assert not a.refs


class TestRoots:
    def test_root_registration(self, heap):
        obj = heap.allocate("A", 8)
        heap.add_root(obj)
        assert heap.is_root(obj)
        assert obj.obj_id in set(heap.root_ids())

    def test_root_multiplicity(self, heap):
        obj = heap.allocate("A", 8)
        heap.add_root(obj)
        heap.add_root(obj)
        heap.remove_root(obj)
        assert heap.is_root(obj)
        heap.remove_root(obj)
        assert not heap.is_root(obj)

    def test_remove_unregistered_root_is_an_error(self, heap):
        obj = heap.allocate("A", 8)
        with pytest.raises(KeyError):
            heap.remove_root(obj)


class TestLimit:
    def test_would_overflow_without_limit(self, heap):
        assert not heap.would_overflow(1 << 40)

    def test_would_overflow_with_limit(self):
        heap = SimHeap(limit=64)
        heap.allocate("A", 48)
        assert not heap.would_overflow(16)
        assert heap.would_overflow(24)

    def test_oom_error_carries_details(self):
        error = OutOfMemoryError(requested=100, live=900, limit=1000)
        assert error.requested == 100
        assert error.live == 900
        assert error.limit == 1000
        assert "out of memory" in str(error)
