"""Property-based accounting invariants of the simulated heap."""

from hypothesis import given, settings, strategies as st

from repro.memory.heap import SimHeap

_ops = st.lists(st.tuples(st.sampled_from(["alloc", "free"]),
                          st.integers(0, 512)), max_size=80)


@settings(max_examples=100, deadline=None)
@given(ops=_ops)
def test_occupancy_equals_sum_of_live_objects(ops):
    heap = SimHeap()
    live = []
    for name, size in ops:
        if name == "alloc":
            live.append(heap.allocate("A", size))
        elif live:
            index = size % len(live)
            heap.free(live.pop(index))
    assert heap.occupied_bytes == sum(obj.size for obj in heap.objects())
    assert len(heap) == len(live)


@settings(max_examples=100, deadline=None)
@given(ops=_ops)
def test_monotonic_counters_balance(ops):
    heap = SimHeap()
    live = []
    for name, size in ops:
        if name == "alloc":
            live.append(heap.allocate("A", size))
        elif live:
            heap.free(live.pop())
    assert (heap.total_allocated_objects
            == heap.total_freed_objects + len(live))
    assert (heap.total_allocated_bytes
            == heap.total_freed_bytes + heap.occupied_bytes)


@settings(max_examples=100, deadline=None)
@given(sizes=st.lists(st.integers(0, 1000), max_size=50))
def test_all_stored_sizes_are_aligned(sizes):
    heap = SimHeap()
    for size in sizes:
        obj = heap.allocate("A", size)
        assert obj.size % heap.model.alignment == 0
        assert obj.size >= size
