"""Memory-layout arithmetic: the byte math every space result rests on."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.layout import MemoryModel


class TestAlignment:
    def test_align_rounds_up_to_eight(self, model):
        assert model.align(1) == 8
        assert model.align(8) == 8
        assert model.align(9) == 16

    def test_align_zero(self, model):
        assert model.align(0) == 0

    @given(st.integers(min_value=0, max_value=1 << 30))
    def test_align_is_idempotent(self, size):
        model = MemoryModel.for_32bit()
        assert model.align(model.align(size)) == model.align(size)

    @given(st.integers(min_value=0, max_value=1 << 30))
    def test_align_never_shrinks(self, size):
        model = MemoryModel.for_32bit()
        aligned = model.align(size)
        assert aligned >= size
        assert aligned - size < model.alignment

    @given(st.integers(min_value=0, max_value=1 << 20),
           st.integers(min_value=0, max_value=1 << 20))
    def test_align_is_monotonic(self, a, b):
        model = MemoryModel.for_32bit()
        if a <= b:
            assert model.align(a) <= model.align(b)


class TestObjectSizes:
    def test_bare_object_is_one_header(self, model):
        assert model.object_size() == model.align(model.header_bytes)

    def test_object_with_refs(self, model):
        # header 8 + 3 refs * 4 = 20 -> aligned 24
        assert model.object_size(ref_fields=3) == 24

    def test_object_with_mixed_fields(self, model):
        # header 8 + 1 ref + 2 ints = 20 -> 24
        assert model.object_size(ref_fields=1, int_fields=2) == 24

    def test_long_fields_count_eight_bytes(self, model):
        assert model.object_size(long_fields=1) == model.align(
            model.header_bytes + 8)

    def test_hash_entry_is_24_bytes_on_32bit(self, model):
        """Section 2.3: 'The entry object alone on a 32-bit architecture
        consumes 24 bytes (object header and three pointers).'"""
        assert model.hash_entry_size() == 24

    def test_linked_entry_is_24_bytes_on_32bit(self, model):
        assert model.linked_entry_size() == 24

    def test_box_size(self, model):
        assert model.box_size() == model.align(model.header_bytes
                                               + model.int_bytes)


class TestArraySizes:
    def test_empty_ref_array(self, model):
        assert model.ref_array_size(0) == model.align(
            model.array_header_bytes)

    def test_ref_array_scales_by_pointer(self, model):
        base = model.ref_array_size(0)
        assert model.ref_array_size(16) == model.align(
            model.array_header_bytes + 16 * model.pointer_bytes)
        assert model.ref_array_size(16) > base

    def test_int_array_scales_by_int(self, model):
        assert model.int_array_size(10) == model.align(
            model.array_header_bytes + 10 * model.int_bytes)

    def test_negative_length_rejected(self, model):
        with pytest.raises(ValueError):
            model.ref_array_size(-1)
        with pytest.raises(ValueError):
            model.int_array_size(-1)

    def test_core_size_is_bare_pointer_array(self, model):
        assert model.core_size(5) == model.ref_array_size(5)

    @given(st.integers(min_value=0, max_value=100_000))
    def test_ref_array_monotonic_in_length(self, n):
        model = MemoryModel.for_32bit()
        assert model.ref_array_size(n + 1) >= model.ref_array_size(n)


class TestVariants:
    def test_64bit_pointers_are_wider(self):
        m32, m64 = MemoryModel.for_32bit(), MemoryModel.for_64bit()
        assert m64.pointer_bytes == 8
        assert m64.ref_array_size(100) > m32.ref_array_size(100)

    def test_compressed_oops_keep_narrow_refs(self):
        compressed = MemoryModel.for_64bit(compressed_oops=True)
        assert compressed.pointer_bytes == 4
        assert compressed.header_bytes == 12

    def test_invalid_models_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel(pointer_bytes=0)
        with pytest.raises(ValueError):
            MemoryModel(alignment=6)
        with pytest.raises(ValueError):
            MemoryModel(array_header_bytes=4)

    def test_model_is_frozen(self, model):
        with pytest.raises(AttributeError):
            model.pointer_bytes = 8
