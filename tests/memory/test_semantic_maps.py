"""Semantic ADT maps: footprint triples and registry dispatch."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.heap import SimHeap
from repro.memory.semantic_maps import (FootprintTriple, ProtocolSemanticMap,
                                        SemanticMap, SemanticMapRegistry)


class TestFootprintTriple:
    def test_valid_triple(self):
        triple = FootprintTriple(100, 60, 20)
        assert triple.slack == 40
        assert triple.overhead == 80

    def test_ordering_invariant_enforced(self):
        with pytest.raises(ValueError):
            FootprintTriple(10, 20, 5)   # used > live
        with pytest.raises(ValueError):
            FootprintTriple(20, 10, 15)  # core > used
        with pytest.raises(ValueError):
            FootprintTriple(10, 5, -1)   # negative core

    def test_degenerate_equal_triple(self):
        triple = FootprintTriple(8, 8, 8)
        assert triple.slack == 0
        assert triple.overhead == 0

    @given(st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000))
    def test_constructor_accepts_exactly_sorted_triples(self, a, b, c):
        live, used, core = sorted((a, b, c), reverse=True)
        triple = FootprintTriple(live, used, core)
        assert triple.slack >= 0
        assert triple.overhead >= triple.slack


class _Payload:
    def __init__(self):
        self.triple = FootprintTriple(50, 40, 10)

    def adt_footprint(self):
        return self.triple

    def adt_internal_ids(self):
        return iter((42,))

    def adt_element_count(self):
        return 2


class TestProtocolDispatch:
    def test_protocol_map_matches_payloads(self):
        heap = SimHeap()
        obj = heap.allocate("X", 8, payload=_Payload())
        semantic_map = ProtocolSemanticMap()
        assert semantic_map.matches(obj)
        assert semantic_map.footprint(obj).live == 50
        assert list(semantic_map.internal_ids(obj)) == [42]
        assert semantic_map.element_count(obj) == 2

    def test_protocol_map_rejects_plain_payloads(self):
        heap = SimHeap()
        obj = heap.allocate("X", 8, payload="just data")
        assert not ProtocolSemanticMap().matches(obj)

    def test_registry_returns_none_for_plain_objects(self):
        heap = SimHeap()
        obj = heap.allocate("X", 8)
        assert SemanticMapRegistry().lookup(obj) is None


class _CustomRowStoreMap(SemanticMap):
    """Custom map modelling the paper's HSQLDB scenario."""

    def matches(self, obj):
        return obj.type_name == "HsqlRowStore"

    def footprint(self, obj):
        return FootprintTriple(obj.size + 100, obj.size + 80, 40)

    def internal_ids(self, obj):
        return iter(obj.refs.keys())

    def element_count(self, obj):
        return len(obj.refs)


class TestCustomRegistration:
    def test_custom_map_takes_precedence(self):
        heap = SimHeap()
        registry = SemanticMapRegistry()
        registry.register("HsqlRowStore", _CustomRowStoreMap())
        store = heap.allocate("HsqlRowStore", 24)
        found = registry.lookup(store)
        assert isinstance(found, _CustomRowStoreMap)
        assert found.footprint(store).live == 124

    def test_custom_map_listed_and_unregisterable(self):
        registry = SemanticMapRegistry()
        registry.register("HsqlRowStore", _CustomRowStoreMap())
        assert "HsqlRowStore" in list(registry.registered_types())
        registry.unregister("HsqlRowStore")
        assert "HsqlRowStore" not in list(registry.registered_types())

    def test_custom_map_matching_is_checked(self):
        """A registered map whose matches() declines falls through to the
        protocol path (or to None)."""
        heap = SimHeap()
        registry = SemanticMapRegistry()
        registry.register("Other", _CustomRowStoreMap())
        obj = heap.allocate("Other", 8)
        assert registry.lookup(obj) is None

    def test_protocol_fallback_behind_custom_types(self):
        heap = SimHeap()
        registry = SemanticMapRegistry()
        registry.register("HsqlRowStore", _CustomRowStoreMap())
        protocol_obj = heap.allocate("SomethingElse", 8, payload=_Payload())
        assert isinstance(registry.lookup(protocol_obj), ProtocolSemanticMap)
