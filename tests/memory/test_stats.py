"""GC-cycle statistics and cross-cycle aggregation (Tables 1 & 3 plumbing)."""

from hypothesis import given, strategies as st

from repro.memory.stats import (ContextCycleStats, ContextHeapAggregate,
                                GcCycleStats, HeapAggregate, HeapTimeline)


class TestHeapAggregate:
    def test_total_and_max(self):
        agg = HeapAggregate()
        for value in (10, 30, 20):
            agg.observe(value)
        assert agg.total == 60
        assert agg.max == 30
        assert agg.cycles == 3
        assert agg.mean == 20.0

    def test_empty_aggregate(self):
        agg = HeapAggregate()
        assert agg.total == 0
        assert agg.max == 0
        assert agg.mean == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1))
    def test_aggregate_matches_builtin_reductions(self, values):
        agg = HeapAggregate()
        for value in values:
            agg.observe(value)
        assert agg.total == sum(values)
        assert agg.max == max(values)
        assert agg.cycles == len(values)


class TestContextCycleStats:
    def test_add_accumulates(self):
        ctx = ContextCycleStats(context_id=1)
        ctx.add(100, 60, 20)
        ctx.add(50, 40, 10)
        assert (ctx.live, ctx.used, ctx.core) == (150, 100, 30)
        assert ctx.object_count == 2
        assert ctx.potential == 50


class TestGcCycleStats:
    def test_context_created_on_demand(self):
        stats = GcCycleStats(cycle=1)
        slice_a = stats.context(7)
        slice_b = stats.context(7)
        assert slice_a is slice_b

    def test_fractions(self):
        stats = GcCycleStats(cycle=1, live_data=1000, collection_live=700,
                             collection_used=400, collection_core=100)
        assert stats.collection_fraction == 0.7
        assert stats.used_fraction == 0.4
        assert stats.core_fraction == 0.1

    def test_fractions_with_empty_heap(self):
        stats = GcCycleStats(cycle=1)
        assert stats.collection_fraction == 0.0

    def test_type_bytes_accumulate(self):
        stats = GcCycleStats(cycle=1)
        stats.add_type_bytes("HashMap", 100)
        stats.add_type_bytes("HashMap", 50)
        assert stats.type_distribution["HashMap"] == 150


class TestContextHeapAggregate:
    def test_observe_cycle_folds_all_metrics(self):
        agg = ContextHeapAggregate(context_id=3)
        cycle = ContextCycleStats(3)
        cycle.add(100, 60, 20)
        agg.observe_cycle(cycle)
        cycle2 = ContextCycleStats(3)
        cycle2.add(200, 120, 40)
        agg.observe_cycle(cycle2)
        assert agg.live.total == 300
        assert agg.used.max == 120
        assert agg.total_potential == 300 - 180
        assert agg.max_potential == 200 - 120
        assert agg.object_count.total == 2


class TestHeapTimeline:
    def _cycle(self, n, live, coll_live, coll_used, coll_core,
               context_id=None):
        stats = GcCycleStats(cycle=n, live_data=live,
                             collection_live=coll_live,
                             collection_used=coll_used,
                             collection_core=coll_core)
        if context_id is not None:
            stats.context(context_id).add(coll_live, coll_used, coll_core)
        return stats

    def test_record_builds_aggregates(self):
        timeline = HeapTimeline()
        timeline.record(self._cycle(1, 1000, 700, 400, 100, context_id=1))
        timeline.record(self._cycle(2, 2000, 900, 500, 150, context_id=1))
        assert timeline.cycle_count == 2
        assert timeline.max_live_data == 2000
        assert timeline.overall_live.total == 3000
        assert timeline.collection_used.max == 500
        context = timeline.context(1)
        assert context.total_potential == (700 - 400) + (900 - 500)

    def test_fractions_series(self):
        timeline = HeapTimeline()
        timeline.record(self._cycle(1, 1000, 700, 400, 100))
        series = timeline.fractions_series()
        assert series == [(1, 0.7, 0.4, 0.1)]

    def test_contexts_ranked_by_potential(self):
        timeline = HeapTimeline()
        stats = GcCycleStats(cycle=1, live_data=100)
        stats.context(1).add(100, 90, 10)   # potential 10
        stats.context(2).add(100, 20, 10)   # potential 80
        timeline.record(stats)
        ranked = timeline.contexts_by_total_potential()
        assert [c.context_id for c in ranked] == [2, 1]

    def test_unknown_context_is_none(self):
        assert HeapTimeline().context(99) is None
