"""Per-context aggregation of instance records (Table 1 trace half)."""

import pytest

from repro.profiler.context_info import ContextInfo
from repro.profiler.counters import Op
from repro.profiler.object_info import ObjectContextInfo


def _instance(context_id=1, src="ArrayList", impl="ArrayList",
              ops=(), max_size=0, capacity=None):
    info = ObjectContextInfo(context_id, src, impl, capacity)
    for op, count in ops:
        for _ in range(count):
            info.record_op(op)
    if max_size:
        info.record_size(max_size)
    return info


class TestAbsorption:
    def test_counts_instances(self):
        ctx = ContextInfo(1, "ArrayList")
        ctx.on_allocation("ArrayList")
        ctx.on_allocation("ArrayList")
        ctx.absorb(_instance())
        assert ctx.instances_allocated == 2
        assert ctx.instances_dead == 1

    def test_rejects_foreign_instances(self):
        ctx = ContextInfo(1, "ArrayList")
        with pytest.raises(ValueError):
            ctx.absorb(_instance(context_id=2))

    def test_op_mean_over_instances(self):
        ctx = ContextInfo(1, "ArrayList")
        ctx.absorb(_instance(ops=[(Op.ADD, 4)]))
        ctx.absorb(_instance(ops=[(Op.ADD, 8)]))
        assert ctx.op_mean(Op.ADD) == 6.0
        assert ctx.op_stddev(Op.ADD) == 2.0
        assert ctx.op_total(Op.ADD) == 12.0

    def test_unseen_ops_count_as_zero(self):
        """An instance that never did #contains contributes a zero, so
        averages are per-instance-at-context."""
        ctx = ContextInfo(1, "ArrayList")
        ctx.absorb(_instance(ops=[(Op.CONTAINS, 10)]))
        ctx.absorb(_instance(ops=[]))
        assert ctx.op_mean(Op.CONTAINS) == 5.0

    def test_late_first_appearance_backfills_zeros(self):
        """An op first seen on the third instance still averages over all
        three."""
        ctx = ContextInfo(1, "ArrayList")
        ctx.absorb(_instance())
        ctx.absorb(_instance())
        ctx.absorb(_instance(ops=[(Op.GET_INDEX, 9)]))
        assert ctx.op_mean(Op.GET_INDEX) == 3.0
        assert ctx.op_stats[Op.GET_INDEX].count == 3

    def test_never_seen_op_is_zero(self):
        ctx = ContextInfo(1, "ArrayList")
        ctx.absorb(_instance())
        assert ctx.op_mean(Op.REMOVE_FIRST) == 0.0
        assert ctx.op_stddev(Op.REMOVE_FIRST) == 0.0


class TestSizeStatistics:
    def test_max_size_aggregates(self):
        ctx = ContextInfo(1, "HashMap")
        for size in (4, 6, 8):
            ctx.absorb(_instance(src="HashMap", max_size=size))
        assert ctx.avg_max_size == 6.0
        assert ctx.max_max_size == 8.0
        assert ctx.max_size_stddev == pytest.approx(1.632993, rel=1e-5)

    def test_initial_capacity_only_when_given(self):
        ctx = ContextInfo(1, "ArrayList")
        ctx.absorb(_instance(capacity=50))
        ctx.absorb(_instance())  # unspecified: not folded in
        assert ctx.avg_initial_capacity == 50.0
        assert ctx.initial_capacity_stats.count == 1

    def test_no_capacity_means_zero(self):
        ctx = ContextInfo(1, "ArrayList")
        ctx.absorb(_instance())
        assert ctx.avg_initial_capacity == 0.0


class TestDerivedMetrics:
    def test_all_ops_mean(self):
        ctx = ContextInfo(1, "ArrayList")
        ctx.absorb(_instance(ops=[(Op.ADD, 3), (Op.GET_INDEX, 5)]))
        ctx.absorb(_instance(ops=[(Op.ADD, 1)]))
        assert ctx.all_ops_mean == 4.5

    def test_all_ops_includes_copied(self):
        """#allOps counts argument-side events, making the temporaries
        rule #allOps == #copied satisfiable."""
        ctx = ContextInfo(1, "ArrayList")
        instance = _instance()
        instance.record_copied()
        ctx.absorb(instance)
        assert ctx.all_ops_mean == 1.0
        assert ctx.op_mean(Op.COPIED) == 1.0

    def test_operation_distribution(self):
        ctx = ContextInfo(1, "ArrayList")
        ctx.absorb(_instance(ops=[(Op.ADD, 1), (Op.GET_INDEX, 3)]))
        distribution = ctx.operation_distribution()
        assert distribution[Op.ADD] == 0.25
        assert distribution[Op.GET_INDEX] == 0.75

    def test_empty_distribution(self):
        ctx = ContextInfo(1, "ArrayList")
        ctx.absorb(_instance())
        assert ctx.operation_distribution() == {}

    def test_impl_names_tracked(self):
        ctx = ContextInfo(1, "HashMap")
        ctx.on_allocation("HashMap")
        ctx.on_allocation("ArrayMap")
        assert ctx.impl_names == {"HashMap", "ArrayMap"}

    def test_swap_count_accumulates(self):
        ctx = ContextInfo(1, "HashMap")
        instance = _instance(src="HashMap")
        instance.record_swap()
        instance.record_swap()
        ctx.absorb(instance)
        assert ctx.swap_count == 2
