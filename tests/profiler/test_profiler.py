"""The semantic profiler facade: sampling, death, flush."""

from repro.profiler.counters import Op
from repro.profiler.profiler import SemanticProfiler
from repro.runtime.sampling import NeverSample, RateSampler


class TestAllocationSide:
    def test_sampled_allocation_creates_record(self):
        profiler = SemanticProfiler()
        assert profiler.should_sample("HashMap")
        info = profiler.on_allocation(1, "HashMap", "HashMap",
                                      initial_capacity=16)
        assert info.context_id == 1
        assert info.initial_capacity == 16
        assert profiler.live_instance_count == 1
        assert profiler.sampled_allocations == 1

    def test_unsampled_allocations_counted(self):
        profiler = SemanticProfiler(NeverSample())
        assert not profiler.should_sample("HashMap")
        profiler.on_unsampled_allocation("HashMap")
        assert profiler.unsampled_allocations == 1
        assert profiler.live_instance_count == 0

    def test_disabled_profiler_never_samples(self):
        profiler = SemanticProfiler()
        profiler.enabled = False
        assert not profiler.should_sample("HashMap")

    def test_rate_sampling_respected(self):
        profiler = SemanticProfiler(RateSampler(rate=2, warmup=0))
        decisions = [profiler.should_sample("T") for _ in range(4)]
        assert decisions == [True, False, True, False]

    def test_context_created_on_first_allocation(self):
        profiler = SemanticProfiler()
        profiler.on_allocation(3, "HashSet", "ArraySet")
        context = profiler.context_info(3)
        assert context.src_type == "HashSet"
        assert context.instances_allocated == 1
        assert "ArraySet" in context.impl_names


class TestDeathSide:
    def test_death_aggregates_and_releases(self):
        profiler = SemanticProfiler()
        info = profiler.on_allocation(1, "HashMap", "HashMap")
        info.record_op(Op.PUT)
        info.record_size(3)
        profiler.on_death(info)
        assert profiler.live_instance_count == 0
        context = profiler.context_info(1)
        assert context.instances_dead == 1
        assert context.op_mean(Op.PUT) == 1.0
        assert context.avg_max_size == 3.0

    def test_flush_absorbs_survivors(self):
        profiler = SemanticProfiler()
        for _ in range(3):
            info = profiler.on_allocation(1, "HashMap", "HashMap")
            info.record_size(2)
        flushed = profiler.flush()
        assert flushed == 3
        assert profiler.live_instance_count == 0
        assert profiler.context_info(1).instances_dead == 3

    def test_flush_is_idempotent(self):
        profiler = SemanticProfiler()
        profiler.on_allocation(1, "HashMap", "HashMap")
        profiler.flush()
        assert profiler.flush() == 0
        assert profiler.context_info(1).instances_dead == 1

    def test_double_death_is_single_count(self):
        """Death hooks and flush must not double-absorb an instance."""
        profiler = SemanticProfiler()
        info = profiler.on_allocation(1, "HashMap", "HashMap")
        profiler.on_death(info)
        assert profiler.flush() == 0
        assert profiler.context_info(1).instances_dead == 1


class TestQueries:
    def test_contexts_iteration(self):
        profiler = SemanticProfiler()
        profiler.on_allocation(1, "HashMap", "HashMap")
        profiler.on_allocation(2, "HashSet", "HashSet")
        assert {c.context_id for c in profiler.contexts()} == {1, 2}

    def test_unknown_context_is_none(self):
        assert SemanticProfiler().context_info(99) is None
