"""Report building, rendering and JSON export."""

import json

import pytest

from repro.collections.wrappers import ChameleonList, ChameleonMap
from repro.profiler.profiler import SemanticProfiler
from repro.profiler.report import build_report
from repro.runtime.context import ContextKey
from repro.runtime.vm import RuntimeEnvironment


@pytest.fixture
def session():
    vm = RuntimeEnvironment(gc_threshold_bytes=None,
                            profiler=SemanticProfiler())
    maps_key = ContextKey.synthetic("cacheFactory", "main")
    lists_key = ContextKey.synthetic("logFactory", "main")
    for i in range(6):
        mapping = ChameleonMap(vm, context=maps_key)
        mapping.pin()
        for k in range(4):
            mapping.put(k, k)
        mapping.get(0)
    lst = ChameleonList(vm, context=lists_key)
    lst.pin()
    lst.add(1)
    vm.collect()
    vm.finish()
    report = build_report(vm.profiler, vm.timeline, vm.contexts)
    return vm, report, maps_key, lists_key


class TestBuildReport:
    def test_one_profile_per_context(self, session):
        _, report, _, _ = session
        assert len(report.profiles) == 2

    def test_context_lookup(self, session):
        vm, report, maps_key, _ = session
        context_id = vm.contexts.intern(maps_key)
        profile = report.context(context_id)
        assert profile.src_type == "HashMap"
        assert profile.kind.value == "Map"
        assert report.context(9999) is None

    def test_ranking_by_potential(self, session):
        _, report, _, _ = session
        top = report.top_contexts(2)
        assert top[0].total_potential >= top[1].total_potential
        # The six 4-entry HashMaps dwarf the single list.
        assert top[0].src_type == "HashMap"

    def test_rank_by_max_potential(self, session):
        _, report, _, _ = session
        top = report.top_contexts(1, by="max_potential")
        assert top[0].src_type == "HashMap"

    def test_unknown_kind_and_key_tolerated(self):
        """Contexts with unregistered source types still build."""
        from repro.profiler.context_info import ContextInfo
        from repro.memory.stats import HeapTimeline
        from repro.runtime.context import ContextRegistry

        profiler = SemanticProfiler()
        profiler.on_allocation(42, "WeirdType", "WeirdImpl")
        profiler.flush()
        report = build_report(profiler, HeapTimeline(), ContextRegistry())
        profile = report.profiles[0]
        assert profile.kind is None
        assert profile.key is None
        assert "<unknown>" in profile.render_context()


class TestRendering:
    def test_top_contexts_text(self, session):
        _, report, _, _ = session
        text = report.render_top_contexts(2)
        assert "cacheFactory" in text
        assert "#put" in text or "#get(Object)" in text
        assert "potential" in text

    def test_fractions_text(self, session):
        _, report, _, _ = session
        text = report.render_fractions()
        assert text.splitlines()[0].startswith("cycle")
        assert len(text.splitlines()) >= 2


class TestJsonExport:
    def test_report_round_trips_through_json(self, session):
        _, report, _, _ = session
        data = json.loads(json.dumps(report.to_dict()))
        assert data["gcCycles"] >= 2
        assert data["maxLiveData"] > 0
        assert len(data["contexts"]) == 2
        assert len(data["fractions"]) == data["gcCycles"]

    def test_context_dict_contents(self, session):
        vm, report, maps_key, _ = session
        context_id = vm.contexts.intern(maps_key)
        data = report.context(context_id).to_dict()
        assert data["srcType"] == "HashMap"
        assert data["kind"] == "Map"
        assert data["instances"] == 6
        assert data["avgMaxSize"] == 4.0
        assert data["operations"]["#put"] == 4.0
        assert data["heap"]["maxLiveCount"] == 6
        assert data["totalPotential"] > 0

    def test_top_limits_exported_contexts(self, session):
        _, report, _, _ = session
        data = report.to_dict(top=1)
        assert len(data["contexts"]) == 1


class TestSuggestionJson:
    def test_suggestion_dict(self, session):
        from repro.rules.engine import RuleEngine
        _, report, _, _ = session
        suggestions = RuleEngine(min_potential_bytes=64).evaluate(report)
        assert suggestions, "expected the small-map rule to fire"
        data = json.loads(json.dumps(suggestions[0].to_dict()))
        assert data["implementation"] == "ArrayMap"
        assert data["action"] == "replace"
        assert data["autoApplicable"] is True
        assert data["potentialBytes"] > 0
