"""Definition 3.1: stability gating."""

import math

from repro.profiler.context_info import ContextInfo
from repro.profiler.object_info import ObjectContextInfo
from repro.profiler.stability import StabilityPolicy
from repro.profiler.welford import Welford


def _sizes(context, sizes):
    for size in sizes:
        instance = ObjectContextInfo(context.context_id, context.src_type,
                                     "ArrayList")
        instance.record_size(size)
        context.absorb(instance)


class TestSizeStability:
    def test_tight_sizes_are_stable(self):
        policy = StabilityPolicy()
        stats = Welford()
        for size in (5, 5, 6, 5, 5):
            stats.observe(size)
        assert policy.check_size(stats)

    def test_wild_sizes_are_unstable(self):
        policy = StabilityPolicy()
        stats = Welford()
        for size in (1, 200, 3, 5000):
            stats.observe(size)
        assert not policy.check_size(stats)

    def test_relative_cap_tolerates_large_stable_means(self):
        """stddev 20 on mean 100 is proportionally tight."""
        policy = StabilityPolicy(size_stddev_cap=2.0, size_cv_cap=0.5)
        stats = Welford()
        for size in (80, 100, 120, 100):
            stats.observe(size)
        assert stats.stddev > 2.0
        assert policy.check_size(stats)

    def test_min_instances_gate(self):
        policy = StabilityPolicy(min_instances=5)
        stats = Welford()
        stats.observe(1)
        verdict = policy.check_size(stats)
        assert not verdict
        assert math.isinf(verdict.stddev)

    def test_verdict_is_truthy_wrapper(self):
        policy = StabilityPolicy(min_instances=1)
        stats = Welford()
        for _ in range(3):
            stats.observe(4)
        verdict = policy.check_size(stats)
        assert bool(verdict) is True
        assert verdict.stddev == 0.0
        assert verdict.metric == "maxSize"


class TestOpStability:
    def test_op_counts_unrestricted_by_default(self):
        """The paper: 'operation counts are not restricted'."""
        policy = StabilityPolicy()
        stats = Welford()
        for count in (0, 10_000):
            stats.observe(count)
        assert policy.check_ops(stats)

    def test_op_cap_can_be_enabled(self):
        policy = StabilityPolicy(op_stddev_cap=1.0, min_instances=2)
        stats = Welford()
        for count in (0, 10_000):
            stats.observe(count)
        assert not policy.check_ops(stats)

    def test_op_cap_respects_min_instances(self):
        policy = StabilityPolicy(op_stddev_cap=1.0, min_instances=5)
        stats = Welford()
        stats.observe(3)
        assert not policy.check_ops(stats)


class TestContextGate:
    def test_stable_context(self):
        context = ContextInfo(1, "HashMap")
        _sizes(context, [5, 5, 6, 5])
        assert StabilityPolicy().context_is_stable(context)

    def test_unstable_context(self):
        """The engine's protection against the section 3.3.2 hazard:
        'even a single collection with large size may considerably
        degrade program performance'."""
        context = ContextInfo(1, "HashMap")
        _sizes(context, [2, 2, 2, 900])
        assert not StabilityPolicy().context_is_stable(context)

    def test_too_few_instances(self):
        context = ContextInfo(1, "HashMap")
        _sizes(context, [5])
        assert not StabilityPolicy().context_is_stable(context)

    def test_permissive_policy_accepts_anything(self):
        context = ContextInfo(1, "HashMap")
        _sizes(context, [1, 5000])
        assert StabilityPolicy.permissive().context_is_stable(context)
