"""Table 1 inventory: every statistic the paper lists is gathered.

Drives a small instrumented program end-to-end and asserts each Table 1
row is available, with the heap half coming from the collection-aware GC
and the trace half from the library counters.
"""

import pytest

from repro.collections.wrappers import ChameleonList, ChameleonMap
from repro.profiler.counters import Op
from repro.profiler.profiler import SemanticProfiler
from repro.runtime.context import ContextKey
from repro.runtime.vm import RuntimeEnvironment


@pytest.fixture
def run():
    """A tiny program: two contexts, mixed lifetimes, two GC cycles."""
    vm = RuntimeEnvironment(gc_threshold_bytes=None,
                            profiler=SemanticProfiler())
    maps_key = ContextKey.synthetic("makeCache", "main")
    lists_key = ContextKey.synthetic("makeBuffer", "main")
    maps = []
    for i in range(4):
        mapping = ChameleonMap(vm, context=maps_key)
        mapping.pin()
        for k in range(3):
            mapping.put(k, k)
        mapping.get(0)
        maps.append(mapping)
    buffers = []
    for i in range(2):
        buffer = ChameleonList(vm, context=lists_key)
        buffer.pin()
        for k in range(6):
            buffer.add(k)
        buffers.append(buffer)
    vm.collect()           # first cycle sees 4 maps + 2 buffers
    for buffer in buffers:
        buffer.unpin()
    vm.collect()           # second cycle sees only the maps
    vm.finish()
    maps_id = vm.contexts.intern(maps_key)
    lists_id = vm.contexts.intern(lists_key)
    return vm, maps_id, lists_id


class TestOverallHeapRows:
    def test_overall_live_data_total_and_max(self, run):
        vm, _, _ = run
        agg = vm.timeline.overall_live
        assert agg.total > 0
        assert agg.max > 0
        assert agg.total >= agg.max

    def test_collection_live_data(self, run):
        vm, _, _ = run
        agg = vm.timeline.collection_live
        assert 0 < agg.max <= vm.timeline.overall_live.max

    def test_collection_used_and_core(self, run):
        vm, _, _ = run
        assert (vm.timeline.collection_live.max
                >= vm.timeline.collection_used.max
                >= vm.timeline.collection_core.max > 0)

    def test_collection_object_number(self, run):
        vm, _, _ = run
        # First cycle: 4 maps + 2 buffers; later cycles: maps only.
        assert vm.timeline.collection_objects.max == 6
        assert vm.timeline.collection_objects.total >= 6 + 4


class TestPerContextHeapRows:
    def test_context_live_used_core_aggregates(self, run):
        vm, maps_id, _ = run
        context = vm.timeline.context(maps_id)
        assert context.live.total > context.used.total > 0
        assert context.core.total > 0
        assert context.total_potential > 0

    def test_context_object_counts(self, run):
        vm, maps_id, lists_id = run
        assert vm.timeline.context(maps_id).object_count.max == 4
        lists_context = vm.timeline.context(lists_id)
        assert lists_context.object_count.max == 2


class TestTraceRows:
    def test_number_of_operations(self, run):
        vm, maps_id, _ = run
        context = vm.profiler.context_info(maps_id)
        assert context.total_ops == 4 * (3 + 1)  # 3 puts + 1 get each

    def test_avg_and_var_operation_count(self, run):
        vm, maps_id, _ = run
        context = vm.profiler.context_info(maps_id)
        assert context.op_mean(Op.PUT) == 3.0
        assert context.op_stddev(Op.PUT) == 0.0
        assert context.op_mean(Op.GET_OBJECT) == 1.0

    def test_avg_and_var_maximal_size(self, run):
        vm, maps_id, lists_id = run
        maps_context = vm.profiler.context_info(maps_id)
        assert maps_context.avg_max_size == 3.0
        assert maps_context.max_size_stddev == 0.0
        lists_context = vm.profiler.context_info(lists_id)
        assert lists_context.avg_max_size == 6.0

    def test_aggregation_is_per_allocation_context(self, run):
        vm, maps_id, lists_id = run
        assert maps_id != lists_id
        assert vm.profiler.context_info(maps_id).src_type == "HashMap"
        assert vm.profiler.context_info(lists_id).src_type == "ArrayList"
