"""Streaming mean/variance accumulator."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.profiler.welford import Welford

_floats = st.floats(min_value=-1e6, max_value=1e6,
                    allow_nan=False, allow_infinity=False)


class TestBasics:
    def test_empty(self):
        w = Welford()
        assert w.count == 0
        assert w.variance == 0.0
        assert w.stddev == 0.0
        assert w.total == 0.0

    def test_single_observation(self):
        w = Welford()
        w.observe(5.0)
        assert w.mean == 5.0
        assert w.variance == 0.0
        assert (w.min, w.max) == (5.0, 5.0)

    def test_known_sequence(self):
        w = Welford()
        for value in (2, 4, 4, 4, 5, 5, 7, 9):
            w.observe(value)
        assert w.mean == 5.0
        assert w.stddev == 2.0  # classic population-stddev example

    def test_extrema(self):
        w = Welford()
        for value in (3, -1, 7):
            w.observe(value)
        assert (w.min, w.max) == (-1, 7)


class TestAgainstNumpy:
    @given(st.lists(_floats, min_size=1, max_size=200))
    def test_matches_numpy(self, values):
        w = Welford()
        for value in values:
            w.observe(value)
        assert w.count == len(values)
        assert math.isclose(w.mean, float(np.mean(values)),
                            rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(w.variance, float(np.var(values)),
                            rel_tol=1e-6, abs_tol=1e-4)
        assert math.isclose(w.total, float(np.sum(values)),
                            rel_tol=1e-9, abs_tol=1e-6)


class TestMerge:
    @given(st.lists(_floats, max_size=100), st.lists(_floats, max_size=100))
    def test_merge_equals_concatenation(self, left, right):
        merged = Welford()
        for value in left:
            merged.observe(value)
        other = Welford()
        for value in right:
            other.observe(value)
        merged.merge(other)

        direct = Welford()
        for value in left + right:
            direct.observe(value)
        assert merged.count == direct.count
        if direct.count:
            assert math.isclose(merged.mean, direct.mean,
                                rel_tol=1e-9, abs_tol=1e-6)
            assert math.isclose(merged.variance, direct.variance,
                                rel_tol=1e-6, abs_tol=1e-4)

    def test_merge_into_empty(self):
        a, b = Welford(), Welford()
        b.observe(3.0)
        a.merge(b)
        assert a.count == 1
        assert a.mean == 3.0

    def test_merge_empty_is_noop(self):
        a = Welford()
        a.observe(1.0)
        a.merge(Welford())
        assert a.count == 1
