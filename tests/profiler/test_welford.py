"""Streaming mean/variance accumulator."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.profiler.welford import Welford

_floats = st.floats(min_value=-1e6, max_value=1e6,
                    allow_nan=False, allow_infinity=False)


class TestBasics:
    def test_empty(self):
        w = Welford()
        assert w.count == 0
        assert w.variance == 0.0
        assert w.stddev == 0.0
        assert w.total == 0.0

    def test_single_observation(self):
        w = Welford()
        w.observe(5.0)
        assert w.mean == 5.0
        assert w.variance == 0.0
        assert (w.min, w.max) == (5.0, 5.0)

    def test_known_sequence(self):
        w = Welford()
        for value in (2, 4, 4, 4, 5, 5, 7, 9):
            w.observe(value)
        assert w.mean == 5.0
        assert w.stddev == 2.0  # classic population-stddev example

    def test_extrema(self):
        w = Welford()
        for value in (3, -1, 7):
            w.observe(value)
        assert (w.min, w.max) == (-1, 7)


class TestAgainstNumpy:
    @given(st.lists(_floats, min_size=1, max_size=200))
    def test_matches_numpy(self, values):
        w = Welford()
        for value in values:
            w.observe(value)
        assert w.count == len(values)
        assert math.isclose(w.mean, float(np.mean(values)),
                            rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(w.variance, float(np.var(values)),
                            rel_tol=1e-6, abs_tol=1e-4)
        assert math.isclose(w.total, float(np.sum(values)),
                            rel_tol=1e-9, abs_tol=1e-6)


class TestMerge:
    @given(st.lists(_floats, max_size=100), st.lists(_floats, max_size=100))
    def test_merge_equals_concatenation(self, left, right):
        merged = Welford()
        for value in left:
            merged.observe(value)
        other = Welford()
        for value in right:
            other.observe(value)
        merged.merge(other)

        direct = Welford()
        for value in left + right:
            direct.observe(value)
        assert merged.count == direct.count
        if direct.count:
            assert math.isclose(merged.mean, direct.mean,
                                rel_tol=1e-9, abs_tol=1e-6)
            assert math.isclose(merged.variance, direct.variance,
                                rel_tol=1e-6, abs_tol=1e-4)

    def test_merge_into_empty(self):
        a, b = Welford(), Welford()
        b.observe(3.0)
        a.merge(b)
        assert a.count == 1
        assert a.mean == 3.0

    def test_merge_empty_is_noop(self):
        a = Welford()
        a.observe(1.0)
        a.merge(Welford())
        assert a.count == 1


class TestMergeEquivalence:
    """Chan's parallel merge must be indistinguishable from observing the
    same stream sequentially -- the guarantee the flat counter-array
    refactor relies on when folding per-instance accumulators."""

    @given(st.lists(_floats, min_size=1, max_size=120),
           st.data())
    def test_merge_equals_interleaved_observation(self, values, data):
        # Split the stream at arbitrary points into k >= 1 chunks.
        cuts = sorted(data.draw(st.lists(
            st.integers(min_value=0, max_value=len(values)), max_size=4)))
        chunks, start = [], 0
        for cut in cuts + [len(values)]:
            chunks.append(values[start:cut])
            start = cut

        merged = Welford()
        for chunk in chunks:
            part = Welford()
            for value in chunk:
                part.observe(value)
            merged.merge(part)

        sequential = Welford()
        for value in values:
            sequential.observe(value)

        assert merged.count == sequential.count
        assert merged.min == sequential.min
        assert merged.max == sequential.max
        assert math.isclose(merged.mean, sequential.mean,
                            rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(merged.variance, sequential.variance,
                            rel_tol=1e-6, abs_tol=1e-4)

    @given(st.lists(_floats, min_size=2, max_size=60))
    def test_merge_is_associative_enough(self, values):
        """((a+b)+c) and (a+(b+c)) agree with the sequential stream."""
        third = max(len(values) // 3, 1)
        parts = [values[:third], values[third:2 * third], values[2 * third:]]
        accs = []
        for part in parts:
            acc = Welford()
            for value in part:
                acc.observe(value)
            accs.append(acc)

        left = Welford()
        left.merge(accs[0])
        left.merge(accs[1])
        left.merge(accs[2])

        right_tail = Welford()
        right_tail.merge(accs[1])
        right_tail.merge(accs[2])
        right = Welford()
        right.merge(accs[0])
        right.merge(right_tail)

        sequential = Welford()
        for value in values:
            sequential.observe(value)
        for acc in (left, right):
            assert acc.count == sequential.count
            assert math.isclose(acc.mean, sequential.mean,
                                rel_tol=1e-9, abs_tol=1e-6)
            assert math.isclose(acc.variance, sequential.variance,
                                rel_tol=1e-6, abs_tol=1e-4)
            assert acc.min == sequential.min
            assert acc.max == sequential.max
