"""Every Table 2 built-in rule fires on a targeted micro-workload.

Each test drives the full pipeline -- instrumented VM, wrapped collection
usage, GC, report, rule engine -- and asserts that the intended rule is
the context's primary suggestion.
"""

import pytest

from repro.collections.wrappers import ChameleonList, ChameleonMap, ChameleonSet
from repro.profiler.profiler import SemanticProfiler
from repro.profiler.report import build_report
from repro.rules.ast import ActionKind
from repro.rules.engine import RuleEngine
from repro.runtime.context import ContextKey
from repro.runtime.vm import RuntimeEnvironment


def run_and_suggest(populate, min_potential=64, constants=None):
    """Run ``populate(vm, key)`` for one synthetic context and return the
    context's primary suggestion (or None)."""
    vm = RuntimeEnvironment(gc_threshold_bytes=None,
                            profiler=SemanticProfiler())
    key = ContextKey.synthetic("site", "caller")
    populate(vm, key)
    vm.collect()
    vm.finish()
    report = build_report(vm.profiler, vm.timeline, vm.contexts)
    engine = RuleEngine(min_potential_bytes=min_potential,
                        constants=constants)
    context_id = vm.contexts.intern(key)
    profile = report.context(context_id)
    assert profile is not None, "context was never profiled"
    return engine.evaluate_context(profile)


class TestSmallMapRule:
    """HashMap + small stable maxSize -> ArrayMap."""

    def test_fires(self):
        def populate(vm, key):
            for _ in range(8):
                mapping = ChameleonMap(vm, context=key)
                mapping.pin()
                for k in range(5):
                    mapping.put(k, k)

        suggestion = run_and_suggest(populate)
        assert suggestion.rule.text.startswith("HashMap")
        assert suggestion.action.impl_name == "ArrayMap"
        assert suggestion.category.value == "Space/Time"

    def test_does_not_fire_for_large_maps(self):
        def populate(vm, key):
            for _ in range(8):
                mapping = ChameleonMap(vm, context=key)
                mapping.pin()
                for k in range(50):
                    mapping.put(k, k)

        suggestion = run_and_suggest(populate)
        assert (suggestion is None
                or suggestion.action.impl_name != "ArrayMap")

    def test_blocked_by_unstable_sizes(self):
        """Sizes 1,1,1,400 must not trigger the small-map replacement
        (the section 3.3.2 hazard)."""
        def populate(vm, key):
            sizes = [2, 2, 2, 2, 2, 2, 2, 400]
            for size in sizes:
                mapping = ChameleonMap(vm, context=key)
                mapping.pin()
                for k in range(size):
                    mapping.put(k, k)

        suggestion = run_and_suggest(populate)
        assert (suggestion is None
                or suggestion.action.impl_name != "ArrayMap")


class TestSmallSetRule:
    def test_fires(self):
        def populate(vm, key):
            for _ in range(8):
                s = ChameleonSet(vm, context=key)
                s.pin()
                for k in range(4):
                    s.add(k)

        suggestion = run_and_suggest(populate)
        assert suggestion.action.impl_name == "ArraySet"


class TestEmptyCollectionRules:
    def test_empty_array_list_goes_lazy(self):
        def populate(vm, key):
            for _ in range(16):
                lst = ChameleonList(vm, context=key)
                lst.pin()
                lst.size()  # touched but never filled

        suggestion = run_and_suggest(populate)
        assert suggestion.action.impl_name == "LazyArrayList"

    def test_empty_linked_list_goes_lazy(self):
        """The bloat context: empty LinkedLists still carry sentinel
        entries."""
        def populate(vm, key):
            for _ in range(16):
                lst = ChameleonList(vm, src_type="LinkedList", context=key)
                lst.pin()
                lst.is_empty()

        suggestion = run_and_suggest(populate)
        assert suggestion.action.impl_name == "LazyArrayList"
        assert "empty" in suggestion.message

    def test_empty_map_goes_lazy(self):
        def populate(vm, key):
            for _ in range(16):
                mapping = ChameleonMap(vm, context=key)
                mapping.pin()
                mapping.contains_key("x")

        suggestion = run_and_suggest(populate)
        assert suggestion.action.impl_name == "LazyMap"

    def test_empty_set_goes_lazy(self):
        def populate(vm, key):
            for _ in range(16):
                s = ChameleonSet(vm, context=key)
                s.pin()
                s.contains("x")

        suggestion = run_and_suggest(populate)
        assert suggestion.action.impl_name == "LazySet"


class TestRedundantCollectionRule:
    def test_never_touched_collections(self):
        def populate(vm, key):
            for _ in range(16):
                ChameleonMap(vm, context=key).pin()

        suggestion = run_and_suggest(populate)
        assert suggestion.action.kind is ActionKind.AVOID_ALLOCATION
        assert suggestion.auto_applicable  # applied as the lazy variant

    def test_used_collections_not_flagged(self):
        def populate(vm, key):
            for _ in range(16):
                mapping = ChameleonMap(vm, context=key)
                mapping.pin()
                mapping.put(1, 1)

        suggestion = run_and_suggest(populate)
        assert (suggestion is None
                or suggestion.action.kind is not ActionKind.AVOID_ALLOCATION)


class TestTemporariesRule:
    def test_copy_only_collections(self):
        """Collections created by copy-construction whose only use is
        being copied out (#allOps == #copied)."""
        def populate(vm, key):
            source = ChameleonList(vm)
            source.pin()
            source.add("v")
            for _ in range(8):
                temp = ChameleonList(vm, context=key, copy_from=source)
                temp.pin()
                sink = ChameleonList(vm)
                sink.pin()
                sink.add_all(temp)

        suggestion = run_and_suggest(populate)
        assert suggestion.action.kind is ActionKind.ELIMINATE_TEMPORARIES
        assert not suggestion.auto_applicable


class TestContainsHeavyListRule:
    def test_fires(self):
        def populate(vm, key):
            for _ in range(4):
                lst = ChameleonList(vm, context=key)
                lst.pin()
                for i in range(40):
                    lst.add(i)
                for i in range(40):
                    lst.contains(i)

        suggestion = run_and_suggest(populate)
        assert suggestion.action.impl_name == "LinkedHashSet"
        assert suggestion.category.value == "Time"

    def test_blocked_by_indexed_reads(self):
        """The refined rule must not fire when the program also uses
        get(i) -- the hash-backed list would degrade it."""
        def populate(vm, key):
            for _ in range(4):
                lst = ChameleonList(vm, context=key)
                lst.pin()
                for i in range(40):
                    lst.add(i)
                for i in range(40):
                    lst.contains(i)
                    lst.get(i)

        suggestion = run_and_suggest(populate)
        assert (suggestion is None
                or suggestion.action.impl_name != "LinkedHashSet")


class TestLinkedListRules:
    def test_random_access_suggests_array_list(self):
        def populate(vm, key):
            for _ in range(4):
                lst = ChameleonList(vm, src_type="LinkedList", context=key)
                lst.pin()
                for i in range(30):
                    lst.add(i)
                for i in range(30):
                    lst.get(i)

        suggestion = run_and_suggest(populate)
        assert suggestion.action.impl_name == "ArrayList"
        assert "get(i)" in suggestion.message or "random" in suggestion.message

    def test_append_only_linked_list_suggests_array_list(self):
        """Table 2: LinkedList overhead not justified without middle/head
        operations."""
        def populate(vm, key):
            for _ in range(8):
                lst = ChameleonList(vm, src_type="LinkedList", context=key)
                lst.pin()
                for i in range(10):
                    lst.add(i)

        suggestion = run_and_suggest(populate)
        assert suggestion.action.impl_name == "ArrayList"
        assert "overhead" in suggestion.message

    def test_head_removal_justifies_linked_list(self):
        def populate(vm, key):
            for _ in range(8):
                lst = ChameleonList(vm, src_type="LinkedList", context=key)
                lst.pin()
                for i in range(10):
                    lst.add(i)
                for _ in range(5):
                    lst.remove_first()

        suggestion = run_and_suggest(populate)
        assert (suggestion is None
                or suggestion.action.impl_name != "ArrayList")


class TestSingletonRule:
    def test_fires_for_constructed_singletons(self):
        def populate(vm, key):
            for _ in range(8):
                lst = ChameleonList(vm, context=key)
                lst.pin()
                lst.add("the one")
                lst.get(0)

        suggestion = run_and_suggest(populate)
        assert suggestion.action.impl_name == "SingletonList"

    def test_blocked_by_mutation(self):
        def populate(vm, key):
            for _ in range(8):
                lst = ChameleonList(vm, context=key)
                lst.pin()
                lst.add("the one")
                lst.set_at(0, "another")

        suggestion = run_and_suggest(populate)
        assert (suggestion is None
                or suggestion.action.impl_name != "SingletonList")


class TestIteratorRule:
    def test_fires_for_empty_only_iteration(self):
        def populate(vm, key):
            for _ in range(8):
                lst = ChameleonList(vm, context=key)
                lst.pin()
                for _ in range(6):
                    list(lst.iterate())

        suggestion = run_and_suggest(populate)
        # The empty-list rule ranks first; the iterator advice must be
        # among the matches for the context.
        kinds = [suggestion.action.kind] + [
            s.action.kind for s in suggestion.secondary]
        assert ActionKind.EMPTY_ITERATOR in kinds

    def test_silent_for_nonempty_iteration(self):
        def populate(vm, key):
            for _ in range(8):
                lst = ChameleonList(vm, context=key)
                lst.pin()
                lst.add(1)
                for _ in range(6):
                    list(lst.iterate())

        suggestion = run_and_suggest(populate)
        kinds = [] if suggestion is None else (
            [suggestion.action.kind]
            + [s.action.kind for s in suggestion.secondary])
        assert ActionKind.EMPTY_ITERATOR not in kinds


class TestCapacityRules:
    def test_incremental_resizing(self):
        def populate(vm, key):
            for _ in range(8):
                lst = ChameleonList(vm, context=key)
                lst.pin()
                for i in range(40):
                    lst.add(i)

        suggestion = run_and_suggest(populate)
        assert suggestion.action.kind is ActionKind.SET_CAPACITY
        assert suggestion.resolved_capacity == 40

    def test_oversized_capacity(self):
        def populate(vm, key):
            for _ in range(40):
                lst = ChameleonList(vm, context=key, initial_capacity=50)
                lst.pin()
                lst.add(1)
                lst.add(2)

        suggestion = run_and_suggest(populate)
        assert suggestion.action.kind is ActionKind.SET_CAPACITY
        assert suggestion.resolved_capacity == 2
        assert "exceeds" in suggestion.message

    def test_well_sized_collections_are_silent(self):
        def populate(vm, key):
            for _ in range(8):
                lst = ChameleonList(vm, context=key, initial_capacity=6)
                lst.pin()
                for i in range(5):
                    lst.add(i)

        assert run_and_suggest(populate) is None
