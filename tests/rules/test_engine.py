"""Rule engine: type matching, gating, priority, ranking, rendering."""

import pytest

from repro.collections.base import CollectionKind
from repro.profiler.stability import StabilityPolicy
from repro.rules.builtin import DEFAULT_CONSTANTS, RuleSpec
from repro.rules.engine import RuleEngine
from repro.lint.findings import RuleValidationError
from repro.rules.evaluator import EvaluationError
from repro.rules.suggestions import RuleCategory

from tests.rules.test_evaluator import make_profile


def spec(text, name="r", category=RuleCategory.SPACE, stable=False,
         gated=False):
    return RuleSpec.parse(name, text, category, "msg",
                          requires_stable_size=stable, space_gated=gated)


class TestTypeMatching:
    def test_exact_type(self):
        engine = RuleEngine(rules=[
            spec("HashMap : instances > 0 -> ArrayMap")])
        hash_map = make_profile(sizes=[1], src="HashMap",
                                kind=CollectionKind.MAP)
        array_list = make_profile(sizes=[1], src="ArrayList",
                                  kind=CollectionKind.LIST)
        assert engine.evaluate_context(hash_map) is not None
        assert engine.evaluate_context(array_list) is None

    def test_kind_names(self):
        engine = RuleEngine(rules=[
            spec("Map : instances > 0 -> ArrayMap")])
        hash_map = make_profile(sizes=[1], src="HashMap",
                                kind=CollectionKind.MAP)
        linked = make_profile(sizes=[1], src="LinkedHashMap",
                              kind=CollectionKind.MAP)
        lst = make_profile(sizes=[1], src="ArrayList",
                           kind=CollectionKind.LIST)
        assert engine.evaluate_context(hash_map) is not None
        assert engine.evaluate_context(linked) is not None
        assert engine.evaluate_context(lst) is None

    def test_collection_matches_everything(self):
        engine = RuleEngine(rules=[
            spec("Collection : instances > 0 -> avoid")])
        for kind, src in ((CollectionKind.MAP, "HashMap"),
                          (CollectionKind.SET, "HashSet"),
                          (CollectionKind.LIST, "LinkedList")):
            profile = make_profile(sizes=[1], src=src, kind=kind)
            assert engine.evaluate_context(profile) is not None


class TestGating:
    def test_stability_gate_blocks(self):
        engine = RuleEngine(rules=[
            spec("ArrayList : instances > 0 -> ArraySet", stable=True)])
        unstable = make_profile(sizes=[1, 1, 1, 500])
        stable_profile = make_profile(sizes=[5, 5, 5, 5])
        assert engine.evaluate_context(unstable) is None
        assert engine.evaluate_context(stable_profile) is not None

    def test_permissive_stability_policy(self):
        engine = RuleEngine(rules=[
            spec("ArrayList : instances > 0 -> ArraySet", stable=True)],
            stability=StabilityPolicy.permissive())
        unstable = make_profile(sizes=[1, 1, 1, 500])
        assert engine.evaluate_context(unstable) is not None

    def test_potential_gate_blocks_space_rules(self):
        engine = RuleEngine(rules=[
            spec("ArrayList : instances > 0 -> ArraySet", gated=True)],
            min_potential_bytes=100)
        negligible = make_profile(sizes=[1], heap_cycles=[(100, 90, 10)])
        worthwhile = make_profile(sizes=[1], heap_cycles=[(500, 100, 10)])
        assert engine.evaluate_context(negligible) is None
        assert engine.evaluate_context(worthwhile) is not None

    def test_time_rules_ignore_potential(self):
        engine = RuleEngine(rules=[
            spec("ArrayList : instances > 0 -> ArraySet",
                 category=RuleCategory.TIME)],
            min_potential_bytes=10**9)
        profile = make_profile(sizes=[1])
        assert engine.evaluate_context(profile) is not None


class TestPriorityAndRanking:
    def test_first_match_is_primary(self):
        # Two registered list targets: eager validation admits them, and
        # first-match priority decides which becomes primary.
        engine = RuleEngine(rules=[
            spec("ArrayList : instances > 0 -> LinkedList", name="a"),
            spec("ArrayList : instances > 0 -> SingletonList", name="b")])
        suggestion = engine.evaluate_context(make_profile(sizes=[1]))
        assert suggestion.action.impl_name == "LinkedList"
        assert [s.action.impl_name
                for s in suggestion.secondary] == ["SingletonList"]

    def test_evaluate_ranks_by_potential(self):
        engine = RuleEngine(rules=[
            spec("Collection : instances > 0 -> avoid")])
        small = make_profile(sizes=[1], heap_cycles=[(100, 90, 10)])
        small.info.context_id = 1
        big = make_profile(sizes=[1], heap_cycles=[(1000, 100, 10)])
        big.context_id = 2
        big.info.context_id = 2

        class FakeReport:
            profiles = [small, big]

        suggestions = engine.evaluate(FakeReport())
        assert [s.potential_bytes for s in suggestions] == sorted(
            (s.potential_bytes for s in suggestions), reverse=True)

    def test_no_match_returns_none(self):
        engine = RuleEngine(rules=[
            spec("ArrayList : maxSize > 100 -> ArraySet")])
        assert engine.evaluate_context(make_profile(sizes=[1])) is None


class TestConstants:
    def test_defaults_available(self):
        engine = RuleEngine()
        assert engine.constants["SMALL_SIZE"] == DEFAULT_CONSTANTS["SMALL_SIZE"]

    def test_overrides_merge(self):
        engine = RuleEngine(constants={"SMALL_SIZE": 99})
        assert engine.constants["SMALL_SIZE"] == 99
        assert "CONTAINS_HEAVY" in engine.constants

    def test_unbound_constant_is_configuration_error(self):
        # Eager Layer 1 validation: the typo is a named error at engine
        # construction, not an EvaluationError when the rule first fires.
        with pytest.raises(RuleValidationError) as excinfo:
            RuleEngine(rules=[
                spec("ArrayList : maxSize < NOT_BOUND -> ArraySet")])
        assert "NOT_BOUND" in str(excinfo.value)
        assert any(f.id == "L1-unknown-constant"
                   for f in excinfo.value.findings)

    def test_unbound_constant_still_evaluates_unvalidated(self):
        engine = RuleEngine(rules=[
            spec("ArrayList : maxSize < NOT_BOUND -> ArraySet")],
            validate=False)
        with pytest.raises(EvaluationError):
            engine.evaluate_context(make_profile(sizes=[1]))

    def test_bogus_replacement_target_is_construction_error(self):
        with pytest.raises(RuleValidationError) as excinfo:
            RuleEngine(rules=[
                spec("HashMap : maxSize > 0 -> FrobMap")])
        assert any(f.id == "L1-unknown-impl"
                   for f in excinfo.value.findings)
        assert "FrobMap" in str(excinfo.value)


class TestCapacityResolution:
    def test_max_size_capacity_resolves_conservatively(self):
        """Tight sizes resolve near the average (avg - stddev), so the
        capacity never overshoots the typical small instance."""
        engine = RuleEngine(rules=[
            spec("ArrayList : instances > 0 -> setCapacity(maxSize)")])
        constant = engine.evaluate_context(make_profile(sizes=[6, 6]))
        assert constant.resolved_capacity == 6
        mixed = engine.evaluate_context(make_profile(sizes=[5, 6]))
        assert mixed.resolved_capacity == 5  # ceil(5.5 - 0.5)

    def test_replacement_without_capacity_gets_sized_from_profile(self):
        engine = RuleEngine(rules=[
            spec("LinkedList : instances > 0 -> ArrayList")])
        from repro.collections.base import CollectionKind
        stable = engine.evaluate_context(make_profile(
            sizes=[6, 6, 6], src="LinkedList", kind=CollectionKind.LIST))
        assert stable.resolved_capacity == 6
        unstable = engine.evaluate_context(make_profile(
            sizes=[2, 2, 2, 40], src="LinkedList",
            kind=CollectionKind.LIST))
        assert unstable.resolved_capacity == 40  # observed maximum

    def test_literal_capacity_passes_through(self):
        engine = RuleEngine(rules=[
            spec("ArrayList : instances > 0 -> ArrayList(32)")])
        suggestion = engine.evaluate_context(make_profile(sizes=[1]))
        assert suggestion.resolved_capacity == 32

    def test_capacity_floor_is_one(self):
        engine = RuleEngine(rules=[
            spec("ArrayList : instances > 0 -> setCapacity(maxSize)")])
        suggestion = engine.evaluate_context(make_profile(sizes=[0, 0]))
        assert suggestion.resolved_capacity == 1


class TestRendering:
    def test_render_empty(self):
        assert "No collection adaptations" in RuleEngine.render([])

    def test_render_numbers_suggestions(self):
        engine = RuleEngine(rules=[
            spec("ArrayList : instances > 0 -> ArraySet")])
        suggestion = engine.evaluate_context(make_profile(sizes=[1]))
        text = RuleEngine.render([suggestion])
        assert text.startswith("1: ")
        assert "replace with ArraySet" in text
