"""Rule-condition evaluation against context profiles."""

import pytest

from repro.collections.base import CollectionKind
from repro.memory.stats import ContextCycleStats, ContextHeapAggregate
from repro.profiler.context_info import ContextInfo
from repro.profiler.counters import Op
from repro.profiler.object_info import ObjectContextInfo
from repro.profiler.report import ContextProfile
from repro.rules.evaluator import (EvaluationError, RuleEnvironment,
                                   evaluate_condition, evaluate_expression)
from repro.rules.parser import parse_condition


def make_profile(ops=(), sizes=(), capacities=(), heap_cycles=(),
                 src="ArrayList", kind=CollectionKind.LIST):
    """Build a ContextProfile by absorbing synthetic instances."""
    info = ContextInfo(1, src)
    observations = max(len(sizes), len(capacities), 1) if (sizes or capacities or ops) else 0
    for index in range(observations):
        instance = ObjectContextInfo(
            1, src, src,
            capacities[index] if index < len(capacities) else None)
        for op, counts in ops:
            count = counts[index] if index < len(counts) else 0
            for _ in range(count):
                instance.record_op(op)
        if index < len(sizes):
            instance.record_size(sizes[index])
        info.on_allocation(src)
        info.absorb(instance)
    heap = None
    if heap_cycles:
        heap = ContextHeapAggregate(1)
        for live, used, core in heap_cycles:
            cycle = ContextCycleStats(1)
            cycle.add(live, used, core)
            heap.observe_cycle(cycle)
    return ContextProfile(context_id=1, key=None, info=info, heap=heap,
                          kind=kind)


def check(text, profile, constants=None):
    env = RuleEnvironment(profile, constants or {})
    return evaluate_condition(parse_condition(text), env)


class TestOperationBindings:
    def test_op_mean(self):
        profile = make_profile(ops=[(Op.CONTAINS, [4, 8])], sizes=[1, 1])
        assert check("#contains == 6", profile)

    def test_op_variance(self):
        profile = make_profile(ops=[(Op.ADD, [4, 8])], sizes=[1, 1])
        assert check("@add == 2", profile)

    def test_all_ops(self):
        profile = make_profile(ops=[(Op.ADD, [2, 2]), (Op.SIZE, [1, 1])],
                               sizes=[2, 2])
        assert check("allOps == 3", profile)
        assert check("#allOps == 3", profile)

    def test_unseen_op_is_zero(self):
        profile = make_profile(sizes=[1])
        assert check("#removeFirst == 0", profile)


class TestDataBindings:
    def test_size_metrics(self):
        profile = make_profile(sizes=[4, 6])
        assert check("maxSize == 5", profile)
        assert check("avgMaxSize == 5", profile)
        assert check("maxMaxSize == 6", profile)
        assert check("size == 5", profile)  # nothing was removed

    def test_instances(self):
        profile = make_profile(sizes=[1, 2, 3])
        assert check("instances == 3", profile)
        assert check("deadInstances == 3", profile)

    def test_initial_capacity(self):
        profile = make_profile(sizes=[1, 1], capacities=[50, 50])
        assert check("initialCapacity == 50", profile)

    def test_heap_metrics(self):
        profile = make_profile(sizes=[1],
                               heap_cycles=[(100, 60, 20), (200, 120, 40)])
        assert check("totLive == 300", profile)
        assert check("maxLive == 200", profile)
        assert check("totUsed == 180", profile)
        assert check("maxUsed == 120", profile)
        assert check("totCore == 60", profile)
        assert check("maxCore == 40", profile)
        assert check("liveCount == 2", profile)
        assert check("maxLiveCount == 1", profile)
        assert check("potential == 120", profile)
        assert check("maxPotential == 80", profile)

    def test_heap_metrics_default_to_zero(self):
        profile = make_profile(sizes=[1])
        assert check("totLive == 0 & potential == 0", profile)


class TestArithmeticAndBoolean:
    def test_arithmetic(self):
        profile = make_profile(sizes=[10])
        assert check("maxSize * 2 + 1 == 21", profile)
        assert check("maxSize / 2 == 5", profile)
        assert check("maxSize - 12 == -2", profile)

    def test_division_by_zero(self):
        profile = make_profile(sizes=[1])
        with pytest.raises(EvaluationError):
            check("maxSize / (instances - 1) > 0", profile)

    def test_boolean_combinations(self):
        profile = make_profile(sizes=[5])
        assert check("maxSize > 1 & maxSize < 10", profile)
        assert check("maxSize > 100 | maxSize == 5", profile)
        assert check("!(maxSize == 0)", profile)
        assert not check("maxSize > 1 & maxSize > 100", profile)

    def test_float_tolerant_equality(self):
        """Averages like 1/3 must still satisfy == with epsilon."""
        profile = make_profile(ops=[(Op.ADD, [1, 0, 0])], sizes=[1, 1, 1])
        assert check("#add * 3 == 1", profile)

    def test_comparison_operators(self):
        profile = make_profile(sizes=[5])
        assert check("maxSize >= 5", profile)
        assert check("maxSize <= 5", profile)
        assert check("maxSize != 4", profile)
        assert not check("maxSize < 5", profile)


class TestConstants:
    def test_bound_constant(self):
        profile = make_profile(sizes=[5])
        assert check("maxSize < SMALL", profile, {"SMALL": 10})

    def test_unbound_constant_raises(self):
        profile = make_profile(sizes=[5])
        with pytest.raises(EvaluationError) as excinfo:
            check("maxSize < SMALL", profile)
        assert "SMALL" in str(excinfo.value)


class TestExpressionEntryPoint:
    def test_evaluate_expression_direct(self):
        from repro.rules.ast import Number
        profile = make_profile(sizes=[1])
        env = RuleEnvironment(profile)
        assert evaluate_expression(Number(3.5), env) == 3.5
