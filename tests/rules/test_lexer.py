"""Tokenizer for the Fig. 4 rule language."""

import pytest

from repro.rules.lexer import LexError, tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)]


def values(text):
    return [token.value for token in tokenize(text) if token.kind != "EOF"]


class TestBasicTokens:
    def test_identifiers_and_punctuation(self):
        assert kinds("ArrayList : maxSize -> ArraySet") == [
            "IDENT", ":", "IDENT", "->", "IDENT", "EOF"]

    def test_numbers(self):
        tokens = tokenize("12 3.5")
        assert [(t.kind, t.value) for t in tokens[:2]] == [
            ("NUMBER", "12"), ("NUMBER", "3.5")]

    def test_comparators(self):
        assert kinds("a == b != c <= d >= e < f > g")[1::2][:6] == [
            "==", "!=", "<=", ">=", "<", ">"]

    def test_boolean_operators(self):
        assert kinds("a & b | !c") == ["IDENT", "&", "IDENT", "|", "!",
                                       "IDENT", "EOF"]

    def test_double_style_booleans(self):
        assert kinds("a && b || c") == ["IDENT", "&&", "IDENT", "||",
                                        "IDENT", "EOF"]

    def test_arithmetic(self):
        assert kinds("1 + 2 * 3 / 4 - 5")[1::2][:4] == ["+", "*", "/", "-"]

    def test_whitespace_ignored(self):
        assert values("  a   +\tb ") == ["a", "+", "b"]

    def test_member_access_dot(self):
        assert kinds("collection.size") == ["IDENT", ".", "IDENT", "EOF"]


class TestCounters:
    def test_plain_op_counter(self):
        token = tokenize("#add")[0]
        assert (token.kind, token.value) == ("OPCOUNT", "#add")

    def test_op_counter_with_argument(self):
        token = tokenize("#get(int)")[0]
        assert token.value == "#get(int)"

    def test_multi_argument_canonicalised(self):
        """Table 2 writes '#add(int, Object)'; the canonical name keeps
        only the first argument."""
        token = tokenize("#add(int, Object)")[0]
        assert token.value == "#add(int)"

    def test_variance_counter(self):
        token = tokenize("@remove")[0]
        assert (token.kind, token.value) == ("OPVAR", "@remove")

    def test_counter_in_expression(self):
        assert values("#contains > X") == ["#contains", ">", "X"]

    def test_missing_name_after_sigil(self):
        with pytest.raises(LexError):
            tokenize("# add")

    def test_unterminated_argument_list(self):
        with pytest.raises(LexError):
            tokenize("#get(int")

    def test_empty_argument_list(self):
        with pytest.raises(LexError):
            tokenize("#get()")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a ? b")
        assert excinfo.value.position == 2

    def test_eof_token_present(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "EOF"

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3
