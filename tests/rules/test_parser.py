"""Parser for the Fig. 4 rule language."""

import pytest

from repro.profiler.counters import Op
from repro.rules.ast import (ActionKind, AndCond, BinaryOp, CAPACITY_MAX_SIZE,
                             Comparison, ConstRef, DataRef, Number, NotCond,
                             OpCount, OpVariance, OrCond)
from repro.rules.parser import ParseError, parse_condition, parse_rule


class TestRuleShape:
    def test_simple_replacement_rule(self):
        rule = parse_rule("HashSet : maxSize < X -> ArraySet")
        assert rule.src_type == "HashSet"
        assert rule.action.kind is ActionKind.REPLACE
        assert rule.action.impl_name == "ArraySet"
        condition = rule.condition
        assert isinstance(condition, Comparison)
        assert condition.operator == "<"
        assert condition.left == DataRef("maxSize")
        assert condition.right == ConstRef("X")

    def test_rule_with_capacity(self):
        rule = parse_rule("ArrayList : maxSize > 4 -> ArrayList(32)")
        assert rule.action.capacity == 32

    def test_rule_with_max_size_capacity(self):
        rule = parse_rule("Collection : maxSize > initialCapacity "
                          "-> setCapacity(maxSize)")
        assert rule.action.kind is ActionKind.SET_CAPACITY
        assert rule.action.capacity == CAPACITY_MAX_SIZE

    def test_advice_actions(self):
        assert parse_rule("Collection : allOps == 0 -> avoid"
                          ).action.kind is ActionKind.AVOID_ALLOCATION
        assert parse_rule("Collection : allOps == 0 -> eliminateTemporaries"
                          ).action.kind is ActionKind.ELIMINATE_TEMPORARIES
        assert parse_rule("Collection : allOps == 0 -> emptyIterator"
                          ).action.kind is ActionKind.EMPTY_ITERATOR

    def test_text_preserved(self):
        text = "HashSet : maxSize < X -> ArraySet"
        assert parse_rule(text).render() == text

    def test_paper_rule_one(self):
        """Section 3.3: 'ArrayList : #contains>X & maxSize>Y ->
        LinkedHashSet'."""
        rule = parse_rule(
            "ArrayList : #contains > X & maxSize > Y -> LinkedHashSet")
        assert isinstance(rule.condition, AndCond)
        assert rule.action.impl_name == "LinkedHashSet"

    def test_paper_linked_list_rule(self):
        """Table 2's middle-operations rule parses with the multi-argument
        counter names as printed."""
        rule = parse_rule(
            "LinkedList : (#add(int, Object) + #addAll(int, Collection) "
            "+ #remove(int) + #removeFirst) < X -> ArrayList")
        condition = rule.condition
        assert isinstance(condition, Comparison)
        assert isinstance(condition.left, BinaryOp)


class TestExpressions:
    def test_counters_resolve_to_ops(self):
        condition = parse_condition("#get(int) > 3")
        assert condition.left == OpCount(Op.GET_INDEX)

    def test_variance_counters(self):
        condition = parse_condition("@add < 1")
        assert condition.left == OpVariance(Op.ADD)

    def test_all_ops_is_data(self):
        condition = parse_condition("#allOps == 0")
        assert condition.left == DataRef("allOps")

    def test_collection_dot_size(self):
        """The Table 2 iterator rule writes 'collection.size'."""
        condition = parse_condition("collection.size == 0")
        assert condition.left == DataRef("size")

    def test_unknown_counter_rejected_with_hint(self):
        with pytest.raises(ParseError) as excinfo:
            parse_condition("#frobnicate > 1")
        assert "known" in str(excinfo.value)
        assert "line 1, column 1" in str(excinfo.value)

    def test_arithmetic_precedence(self):
        condition = parse_condition("1 + 2 * 3 == 7")
        left = condition.left
        assert isinstance(left, BinaryOp) and left.operator == "+"
        assert isinstance(left.right, BinaryOp)
        assert left.right.operator == "*"

    def test_parenthesised_arithmetic(self):
        condition = parse_condition("(#add + #remove) < 2")
        assert isinstance(condition.left, BinaryOp)

    def test_numbers_parse_as_floats(self):
        condition = parse_condition("maxSize > 1.5")
        assert condition.right == Number(1.5)

    def test_single_equals_accepted(self):
        """The paper's grammar writes 'expr = constant'."""
        condition = parse_condition("#remove = 0")
        assert condition.operator == "=="


class TestBooleanStructure:
    def test_and_or_precedence(self):
        condition = parse_condition("a > 1 & b > 2 | c > 3")
        assert isinstance(condition, OrCond)
        assert isinstance(condition.left, AndCond)

    def test_not(self):
        condition = parse_condition("!(maxSize == 0)")
        assert isinstance(condition, NotCond)

    def test_parenthesised_booleans(self):
        condition = parse_condition("(a > 1 | b > 2) & c > 3")
        assert isinstance(condition, AndCond)
        assert isinstance(condition.left, OrCond)

    def test_double_style_operators(self):
        condition = parse_condition("a > 1 && b > 2 || c > 3")
        assert isinstance(condition, OrCond)


class TestTypeErrors:
    def test_condition_must_be_boolean(self):
        with pytest.raises(ParseError):
            parse_rule("ArrayList : maxSize + 1 -> ArraySet")

    def test_boolean_operand_of_arithmetic_rejected(self):
        with pytest.raises(ParseError):
            parse_condition("(a > 1) + 2 == 3")

    def test_arithmetic_operand_of_and_rejected(self):
        with pytest.raises(ParseError):
            parse_condition("maxSize & 1 > 0")

    def test_not_binds_looser_than_comparison(self):
        """``!maxSize > 1`` reads as ``!(maxSize > 1)``."""
        condition = parse_condition("!maxSize > 1")
        assert isinstance(condition, NotCond)
        assert isinstance(condition.operand, Comparison)

    def test_bare_not_of_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_condition("!maxSize")


class TestActionErrors:
    def test_set_capacity_requires_argument(self):
        with pytest.raises(ParseError):
            parse_rule("Collection : maxSize > 0 -> setCapacity")

    def test_advice_takes_no_capacity(self):
        with pytest.raises(ParseError):
            parse_rule("Collection : maxSize > 0 -> avoid(3)")

    def test_capacity_must_be_int_or_max_size(self):
        with pytest.raises(ParseError):
            parse_rule("Collection : maxSize > 0 -> ArrayList(avg)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("HashSet : maxSize < 2 -> ArraySet junk")

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("HashSet : maxSize < 2 ArraySet")


class TestErrorPositions:
    """ParseError carries line/column and a caret-context snippet."""

    def test_position_attributes(self):
        source = "HashSet : maxSize < 2 ArraySet"
        with pytest.raises(ParseError) as excinfo:
            parse_rule(source)
        error = excinfo.value
        assert error.line == 1
        assert error.column == source.index("ArraySet") + 1
        assert error.source == source
        assert f"near 'ArraySet', line 1, column {error.column}" \
            in str(error)

    def test_caret_snippet_points_at_offender(self):
        source = "HashSet : maxSize < 2 ArraySet"
        with pytest.raises(ParseError) as excinfo:
            parse_rule(source)
        error = excinfo.value
        snippet_lines = error.snippet.splitlines()
        assert snippet_lines[0] == "  " + source
        assert snippet_lines[1].index("^") - 2 == error.column - 1
        assert error.snippet in str(error)

    def test_column_on_later_token(self):
        with pytest.raises(ParseError) as excinfo:
            parse_condition("maxSize > #frobnicate")
        assert excinfo.value.column == len("maxSize > ") + 1

    def test_multiline_source_reports_correct_line(self):
        with pytest.raises(ParseError) as excinfo:
            parse_condition("maxSize > 1\n& #frobnicate > 0")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3
