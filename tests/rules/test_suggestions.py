"""Suggestion records: choices, applicability, rendering."""

import pytest

from repro.collections.base import CollectionKind
from repro.rules.ast import Action, ActionKind, Rule
from repro.rules.parser import parse_rule
from repro.rules.suggestions import LAZY_IMPL_BY_KIND, RuleCategory, Suggestion

from tests.rules.test_evaluator import make_profile


def make_suggestion(action, kind=CollectionKind.LIST, capacity=None,
                    src="ArrayList"):
    profile = make_profile(sizes=[1], src=src, kind=kind,
                           heap_cycles=[(100, 50, 10)])
    rule = parse_rule("Collection : instances > 0 -> avoid")
    return Suggestion(profile=profile, rule=rule, action=action,
                      category=RuleCategory.SPACE, message="msg",
                      resolved_capacity=capacity)


class TestToChoice:
    def test_replace(self):
        suggestion = make_suggestion(
            Action(ActionKind.REPLACE, impl_name="ArraySet"), capacity=4)
        choice = suggestion.to_choice()
        assert choice.impl_name == "ArraySet"
        assert choice.initial_capacity == 4
        assert suggestion.auto_applicable

    def test_set_capacity(self):
        suggestion = make_suggestion(Action(ActionKind.SET_CAPACITY,
                                            capacity=8), capacity=8)
        choice = suggestion.to_choice()
        assert choice.impl_name is None
        assert choice.initial_capacity == 8

    @pytest.mark.parametrize("kind,expected", [
        (CollectionKind.LIST, "LazyArrayList"),
        (CollectionKind.SET, "LazySet"),
        (CollectionKind.MAP, "LazyMap")])
    def test_avoid_maps_to_lazy_per_kind(self, kind, expected):
        suggestion = make_suggestion(Action(ActionKind.AVOID_ALLOCATION),
                                     kind=kind)
        assert suggestion.to_choice().impl_name == expected
        assert LAZY_IMPL_BY_KIND[kind] == expected

    def test_avoid_without_kind_is_manual(self):
        suggestion = make_suggestion(Action(ActionKind.AVOID_ALLOCATION),
                                     kind=None)
        assert suggestion.to_choice() is None
        assert not suggestion.auto_applicable

    @pytest.mark.parametrize("kind", [ActionKind.ELIMINATE_TEMPORARIES,
                                      ActionKind.EMPTY_ITERATOR])
    def test_manual_advice_is_not_applicable(self, kind):
        suggestion = make_suggestion(Action(kind))
        assert suggestion.to_choice() is None
        assert not suggestion.auto_applicable


class TestRendering:
    def test_ranked_render(self):
        suggestion = make_suggestion(
            Action(ActionKind.REPLACE, impl_name="ArraySet"))
        text = suggestion.render(3)
        assert text.startswith("3: ")
        assert "replace with ArraySet" in text
        assert "[Space]" in text

    def test_unranked_render(self):
        suggestion = make_suggestion(Action(ActionKind.AVOID_ALLOCATION))
        assert not suggestion.render().startswith("1:")

    def test_set_capacity_shows_resolved_value(self):
        suggestion = make_suggestion(
            Action(ActionKind.SET_CAPACITY, capacity="maxSize"),
            capacity=17)
        assert "(17)" in suggestion.render()

    def test_potential_exposed(self):
        suggestion = make_suggestion(Action(ActionKind.AVOID_ALLOCATION))
        assert suggestion.potential_bytes == 50  # 100 live - 50 used


class TestActionRendering:
    def test_action_render_variants(self):
        assert Action(ActionKind.REPLACE, "ArrayMap").render() == \
            "replace with ArrayMap"
        assert Action(ActionKind.REPLACE, "ArrayMap",
                      capacity=5).render() == "replace with ArrayMap(5)"
        assert "set initial capacity" in Action(
            ActionKind.SET_CAPACITY, capacity=3).render()
        assert Action(ActionKind.AVOID_ALLOCATION).render() == \
            "avoid allocation"

    def test_rule_render_fallback(self):
        rule = Rule("X", None, Action(ActionKind.AVOID_ALLOCATION), text="")
        assert "X" in rule.render()
