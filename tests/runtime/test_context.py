"""Allocation-context capture, rendering and interning."""

from repro.runtime.context import (TOPLEVEL_FRAME, ContextFrame, ContextKey,
                                   ContextRegistry, capture_context,
                                   clear_capture_caches)


def _inner_site(depth=2):
    return capture_context(depth=depth, skip=0)


def _outer_caller(depth=2):
    return _inner_site(depth)


class TestCapture:
    def test_capture_names_application_frames(self):
        key, walked = _outer_caller()
        assert key.depth == 2
        assert "_inner_site" in key.frames[0].location
        assert "_outer_caller" in key.frames[1].location
        assert walked >= 2

    def test_capture_respects_depth(self):
        key, _ = _outer_caller(depth=1)
        assert key.depth == 1
        assert "_inner_site" in key.frames[0].location

    def test_same_site_same_key(self):
        key_a, _ = _outer_caller()
        key_b, _ = _outer_caller()
        assert key_a == key_b

    def test_different_sites_differ(self):
        key_a, _ = _outer_caller()
        key_b, _ = _inner_site()
        assert key_a != key_b

    def test_walked_counts_examined_frames(self):
        def deep3():
            return _inner_site(depth=3)
        _, walked = deep3()
        assert walked >= 3


class TestShallowStacks:
    """Regression: ``skip`` deeper than the live stack used to raise
    ``ValueError`` from ``sys._getframe``; it must fall back to a
    synthetic ``<toplevel>`` site instead."""

    def test_skip_beyond_stack_yields_toplevel(self):
        key, walked = capture_context(depth=2, skip=500)
        assert walked == 0
        assert key.frames == (TOPLEVEL_FRAME,)
        assert key.site.location == "<toplevel>"

    def test_no_skip_depth_combination_raises(self):
        for skip in (0, 10, 50, 200, 1000):
            key, _ = capture_context(depth=2, skip=skip)
            assert key.depth >= 1

    def test_toplevel_interns_to_one_context(self):
        registry = ContextRegistry(depth=2)
        first = registry.intern(capture_context(depth=2, skip=500)[0])
        second = registry.intern(capture_context(depth=2, skip=500)[0])
        assert first == second


class TestCaptureMemo:
    """The memoized fast path must be indistinguishable from a cold
    frame walk -- same key, same walked count (tick charges depend on
    it)."""

    def test_warm_capture_matches_cold(self):
        clear_capture_caches()
        cold = _outer_caller()
        warm = _outer_caller()
        assert warm == cold

    def test_clear_caches_is_idempotent(self):
        clear_capture_caches()
        clear_capture_caches()
        key, walked = _outer_caller()
        assert "_inner_site" in key.frames[0].location
        assert walked >= 2

    def test_memo_preserves_site_distinction(self):
        registry = ContextRegistry(depth=2)

        def site():
            return registry.capture(skip=0)

        # Repeats of one call line share a context even once the memo
        # is warm; a second call line still gets its own.
        ids = {site()[0] for _ in range(3)}
        assert len(ids) == 1
        other, _ = site()
        assert other not in ids


class TestContextKey:
    def test_render_format(self):
        key = ContextKey((ContextFrame("pkg.factory", 31),
                          ContextFrame("pkg.caller", 50)))
        assert key.render() == "pkg.factory:31;pkg.caller:50"

    def test_site_is_innermost(self):
        key = ContextKey.synthetic("factory", "caller")
        assert key.site.location == "factory"

    def test_empty_key(self):
        key = ContextKey(())
        assert key.site is None
        assert key.render() == ""

    def test_synthetic_keys_are_hashable_and_equal(self):
        a = ContextKey.synthetic("f", "g")
        b = ContextKey.synthetic("f", "g")
        assert a == b
        assert hash(a) == hash(b)


class TestContextRegistry:
    def test_interning_is_stable(self):
        registry = ContextRegistry()
        key = ContextKey.synthetic("a")
        first = registry.intern(key)
        second = registry.intern(key)
        assert first == second
        assert len(registry) == 1

    def test_ids_are_dense_from_one(self):
        registry = ContextRegistry()
        ids = [registry.intern(ContextKey.synthetic(name))
               for name in ("a", "b", "c")]
        assert ids == [1, 2, 3]

    def test_describe_roundtrip(self):
        registry = ContextRegistry()
        key = ContextKey.synthetic("a", "b")
        context_id = registry.intern(key)
        assert registry.describe(context_id) == key

    def test_capture_via_registry(self):
        registry = ContextRegistry(depth=2)

        def site():
            return registry.capture(skip=0)

        results = [site() for _ in range(2)]  # one call site, one context
        assert results[0][0] == results[1][0]
        assert results[0][1] >= 1
        context_id = results[0][0]
        assert "site" in registry.describe(context_id).frames[0].location

    def test_distinct_call_lines_are_distinct_contexts(self):
        """The context is the call stack: two different call sites of
        the same factory must intern to two different contexts."""
        registry = ContextRegistry(depth=2)

        def site():
            return registry.capture(skip=0)

        id_a, _ = site()
        id_b, _ = site()  # different caller line => different context
        assert id_a != id_b

    def test_ids_iteration(self):
        registry = ContextRegistry()
        registry.intern(ContextKey.synthetic("a"))
        registry.intern(ContextKey.synthetic("b"))
        assert sorted(registry.ids()) == [1, 2]
