"""Cost model and virtual clock."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.costs import CostModel, VMClock


class TestVMClock:
    def test_charges_accumulate(self):
        clock = VMClock()
        clock.charge(5)
        clock.charge(7)
        assert clock.now == 12

    def test_zero_charge_allowed(self):
        clock = VMClock()
        clock.charge(0)
        assert clock.now == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            VMClock().charge(-1)

    @given(st.lists(st.integers(min_value=0, max_value=10**6)))
    def test_clock_is_sum_of_charges(self, charges):
        clock = VMClock()
        for ticks in charges:
            clock.charge(ticks)
        assert clock.now == sum(charges)


class TestCostModel:
    def test_allocation_ticks_scale_with_size(self):
        costs = CostModel(alloc_base=4, alloc_per_16_bytes=1)
        assert costs.allocation_ticks(0) == 4
        assert costs.allocation_ticks(16) == 5
        assert costs.allocation_ticks(160) == 14

    def test_context_capture_ticks(self):
        costs = CostModel(stack_walk_base=100, stack_walk_per_frame=10)
        assert costs.context_capture_ticks(0) == 100
        assert costs.context_capture_ticks(3) == 130

    def test_capture_dwarfs_collection_operations(self):
        """The section 5.4 asymmetry: one context capture costs many
        hash operations."""
        costs = CostModel()
        one_hash_op = costs.hash_compute + costs.hash_probe
        assert costs.context_capture_ticks(2) > 10 * one_hash_op

    def test_hashing_beats_scanning_only_at_size(self):
        """'In the realm of small sizes, constants matter': a hash probe
        costs more than scanning a handful of array slots."""
        costs = CostModel()
        hash_lookup = costs.hash_compute + costs.hash_probe
        small_scan = 4 * costs.array_scan_per_element
        big_scan = 64 * costs.array_scan_per_element
        assert small_scan < hash_lookup < big_scan

    def test_with_overrides_returns_new_model(self):
        base = CostModel()
        tweaked = base.with_overrides(hash_compute=99)
        assert tweaked.hash_compute == 99
        assert base.hash_compute != 99
        assert tweaked.array_access == base.array_access

    def test_model_is_frozen(self):
        with pytest.raises(AttributeError):
            CostModel().hash_compute = 1
