"""The GC-overhead-limit OOM semantics (the HotSpot/J9 analog).

Without this guard the minimal-heap measure degenerates: a program whose
live set sits a few bytes under the limit would "run" by collecting on
every allocation.  The runtime instead declares OutOfMemory after several
consecutive low-yield forced collections.
"""

import pytest

from repro.memory.heap import OutOfMemoryError
from repro.runtime.vm import RuntimeEnvironment


def _fill_live(vm, bytes_total, chunk=256):
    holder = vm.allocate_data("Holder", ref_fields=2)
    vm.add_root(holder)
    allocated = vm.model.align(vm.model.object_size(ref_fields=2))
    while allocated < bytes_total:
        obj = vm.allocate("Live", chunk)
        holder.add_ref(obj.obj_id)
        allocated += vm.model.align(chunk)
    return holder


class TestOverheadLimit:
    def test_razor_thin_heap_is_declared_oom(self):
        """Live set just under the limit + steady garbage: each forced
        collection frees almost nothing, so the run must OOM rather than
        crawl."""
        vm = RuntimeEnvironment(heap_limit=64 * 1024,
                                gc_threshold_bytes=None,
                                gc_overhead_fraction=0.04,
                                gc_overhead_limit=4)
        _fill_live(vm, 63 * 1024)
        with pytest.raises(OutOfMemoryError):
            for _ in range(10_000):
                vm.allocate("Scratch", 128)

    def test_healthy_headroom_runs_forever(self):
        """With real headroom, every forced collection reclaims a full
        batch of garbage and the guard never trips."""
        vm = RuntimeEnvironment(heap_limit=64 * 1024,
                                gc_threshold_bytes=None,
                                gc_overhead_fraction=0.04,
                                gc_overhead_limit=4)
        _fill_live(vm, 32 * 1024)
        for _ in range(10_000):
            vm.allocate("Scratch", 128)
        assert vm.gc.cycle_count > 0
        assert not vm.oom_raised

    def test_guard_can_be_disabled(self):
        """gc_overhead_fraction=0 reverts to pure capacity semantics."""
        vm = RuntimeEnvironment(heap_limit=64 * 1024,
                                gc_threshold_bytes=None,
                                gc_overhead_fraction=0.0)
        _fill_live(vm, 63 * 1024)
        for _ in range(2_000):
            vm.allocate("Scratch", 128)  # crawls, but must not OOM
        assert not vm.oom_raised

    def test_one_productive_gc_resets_the_counter(self):
        """Low-yield collections must be *consecutive*: a productive one
        in between resets the strike count."""
        vm = RuntimeEnvironment(heap_limit=64 * 1024,
                                gc_threshold_bytes=None,
                                gc_overhead_fraction=0.04,
                                gc_overhead_limit=4)
        _fill_live(vm, 58 * 1024)
        # Alternate tiny scratch (low-yield pressure) with a large batch
        # of garbage (productive collection).
        for _ in range(200):
            for _ in range(3):
                vm.allocate("Tiny", 64)
            vm.allocate("Big", 4 * 1024)
        assert not vm.oom_raised

    def test_oom_from_capacity_still_raises_first(self):
        """A live set that simply cannot fit raises immediately,
        independent of the overhead guard."""
        vm = RuntimeEnvironment(heap_limit=8 * 1024,
                                gc_threshold_bytes=None)
        with pytest.raises(OutOfMemoryError):
            _fill_live(vm, 16 * 1024)
        assert vm.oom_raised
