"""Sampling policies: deterministic rates and adaptive shut-off."""

import pytest

from repro.runtime.sampling import (AdaptiveTypeSampler, AlwaysSample,
                                    NeverSample, RateSampler)


class TestBasicPolicies:
    def test_always(self):
        policy = AlwaysSample()
        assert all(policy.should_sample("HashMap") for _ in range(10))

    def test_never(self):
        policy = NeverSample()
        assert not any(policy.should_sample("HashMap") for _ in range(10))

    def test_observe_potential_is_a_noop_by_default(self):
        AlwaysSample().observe_potential("HashMap", 100)  # must not raise


class TestRateSampler:
    def test_warmup_always_sampled(self):
        policy = RateSampler(rate=10, warmup=3)
        assert [policy.should_sample("T") for _ in range(3)] == [True] * 3

    def test_one_in_n_after_warmup(self):
        policy = RateSampler(rate=4, warmup=0)
        decisions = [policy.should_sample("T") for _ in range(8)]
        assert decisions == [True, False, False, False] * 2

    def test_rates_are_per_type(self):
        policy = RateSampler(rate=2, warmup=0)
        assert policy.should_sample("A") is True
        assert policy.should_sample("B") is True   # B's own counter
        assert policy.should_sample("A") is False

    def test_deterministic_across_instances(self):
        a = RateSampler(rate=3, warmup=1)
        b = RateSampler(rate=3, warmup=1)
        seq_a = [a.should_sample("T") for _ in range(20)]
        seq_b = [b.should_sample("T") for _ in range(20)]
        assert seq_a == seq_b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RateSampler(rate=0)
        with pytest.raises(ValueError):
            RateSampler(rate=1, warmup=-1)


class TestAdaptiveTypeSampler:
    def test_shuts_off_low_potential_types(self):
        policy = AdaptiveTypeSampler(potential_threshold=1000,
                                     min_observations=5)
        for _ in range(5):
            policy.observe_potential("Boring", 10)
        assert policy.is_disabled("Boring")
        assert not policy.should_sample("Boring")

    def test_keeps_high_potential_types(self):
        policy = AdaptiveTypeSampler(potential_threshold=100,
                                     min_observations=3)
        for _ in range(10):
            policy.observe_potential("Juicy", 500)
        assert not policy.is_disabled("Juicy")
        assert policy.should_sample("Juicy")

    def test_needs_min_observations_before_disabling(self):
        policy = AdaptiveTypeSampler(potential_threshold=1000,
                                     min_observations=10)
        for _ in range(9):
            policy.observe_potential("T", 0)
        assert not policy.is_disabled("T")

    def test_disabling_is_permanent(self):
        policy = AdaptiveTypeSampler(potential_threshold=100,
                                     min_observations=1)
        policy.observe_potential("T", 0)
        assert policy.is_disabled("T")
        # Later high-potential feedback is ignored once shut off.
        policy.observe_potential("T", 10**6)
        assert policy.is_disabled("T")

    def test_respects_base_rate(self):
        policy = AdaptiveTypeSampler(rate=2, warmup=0)
        decisions = [policy.should_sample("T") for _ in range(4)]
        assert decisions == [True, False, True, False]
