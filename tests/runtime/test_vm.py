"""RuntimeEnvironment: allocation, GC triggers, OOM, capture pricing."""

import pytest

from repro.memory.heap import OutOfMemoryError
from repro.profiler.profiler import SemanticProfiler
from repro.runtime.context import ContextKey
from repro.runtime.vm import ImplementationChoice, RuntimeEnvironment


class TestAllocationAndGc:
    def test_allocate_charges_clock(self, vm):
        before = vm.now
        vm.allocate("A", 160)
        assert vm.now > before

    def test_periodic_gc_by_allocation_threshold(self):
        vm = RuntimeEnvironment(gc_threshold_bytes=1024)
        for _ in range(100):
            vm.allocate("A", 64)
        assert vm.gc.cycle_count >= 5

    def test_no_periodic_gc_when_disabled(self, vm):
        for _ in range(100):
            vm.allocate("A", 64)
        assert vm.gc.cycle_count == 0

    def test_limit_triggers_gc_then_oom(self):
        vm = RuntimeEnvironment(heap_limit=1024, gc_threshold_bytes=None)
        root = vm.allocate("Root", 64)
        vm.add_root(root)
        # Garbage is reclaimed on demand: this exceeds 1024 total but
        # never holds more than 64+128 live+garbage at once.
        for _ in range(50):
            vm.allocate("Garbage", 128)
        assert vm.gc.cycle_count >= 1
        # Now fill with live data until the limit truly cannot be met.
        with pytest.raises(OutOfMemoryError):
            for _ in range(50):
                keep = vm.allocate("Live", 128)
                vm.add_root(keep)
        assert vm.oom_raised

    def test_allocate_data_builds_sized_records(self, vm):
        record = vm.allocate_data("Rec", ref_fields=2, int_fields=1)
        assert record.size == vm.model.object_size(ref_fields=2,
                                                   int_fields=1)

    def test_finish_runs_final_gc_and_flush(self):
        vm = RuntimeEnvironment(gc_threshold_bytes=None,
                                profiler=SemanticProfiler())
        vm.profiler.on_allocation(1, "HashMap", "HashMap")
        vm.finish()
        assert vm.gc.cycle_count == 1
        assert vm.profiler.live_instance_count == 0


class TestContextCapture:
    def test_explicit_context_is_free(self, vm):
        before = vm.now
        context_id = vm.capture_allocation_context(
            explicit=ContextKey.synthetic("factory"))
        assert vm.now == before
        assert vm.contexts.describe(context_id).site.location == "factory"

    def test_charged_capture_advances_clock(self, vm):
        before = vm.now
        vm.capture_allocation_context(charged=True)
        assert vm.now - before >= vm.costs.stack_walk_base

    def test_uncharged_capture_is_free(self, vm):
        before = vm.now
        vm.capture_allocation_context(charged=False)
        assert vm.now == before

    def test_captured_context_points_at_caller(self, vm):
        def my_allocation_site():
            return vm.capture_allocation_context(charged=False)

        context_id = my_allocation_site()
        key = vm.contexts.describe(context_id)
        assert "my_allocation_site" in key.frames[0].location


class _StaticPolicy:
    requires_runtime_capture = False

    def __init__(self, choice):
        self.choice = choice
        self.calls = []

    def choose(self, src_type, context_id):
        self.calls.append((src_type, context_id))
        return self.choice


class _OnlinePolicy(_StaticPolicy):
    requires_runtime_capture = True


class TestPolicyDispatch:
    def test_no_policy_returns_none(self, vm):
        assert vm.choose_implementation("HashMap", 1) is None

    def test_offline_policy_lookup_is_uncharged(self, vm):
        vm.policy = _StaticPolicy(ImplementationChoice("ArrayMap"))
        before = vm.now
        choice = vm.choose_implementation("HashMap", 1)
        assert choice.impl_name == "ArrayMap"
        assert vm.now == before

    def test_online_policy_lookup_is_charged(self, vm):
        vm.policy = _OnlinePolicy(None)
        before = vm.now
        vm.choose_implementation("HashMap", 1)
        assert vm.now - before == vm.costs.policy_lookup

    def test_needs_context_flags(self, vm):
        assert vm.needs_context_at_allocation == (False, False)
        vm.policy = _StaticPolicy(None)
        assert vm.needs_context_at_allocation == (True, False)
        vm.policy = _OnlinePolicy(None)
        assert vm.needs_context_at_allocation == (True, True)
        vm.policy = None
        vm.enable_profiling(SemanticProfiler())
        assert vm.needs_context_at_allocation == (True, True)

    def test_profiling_toggle(self, vm):
        profiler = vm.enable_profiling(SemanticProfiler())
        assert vm.profiling_enabled
        assert vm.profiler is profiler
        vm.disable_profiling()
        assert not vm.profiling_enabled
