"""The trace compiler: lowering, perturbation, and generator closure.

The conformance harness (``test_conformance.py``) pins compiled
execution to ``replay_trace`` for the bundled scenario sources; this
module covers the compiler itself -- step lowering, parameterization --
and the property that makes the whole pipeline trustworthy for *any*
trace: the generator -> compiler -> recorder path is closed.  Compiling
a generated trace and recording its execution yields the original
operation stream back (modulo the two op kinds a recorder can never
see: ``gc`` is a VM event, and ``init`` models copy-construction
contents that predate the recorder's patch points).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collections.base import CollectionKind
from repro.runtime.vm import RuntimeEnvironment
from repro.verify.compile import (STEP_CALL, STEP_GC, STEP_INIT,
                                  STEP_ITER_NEW, STEP_NOP, STEP_PUT_ALL,
                                  STEP_SWAP, TraceInstance, compile_trace,
                                  perturb_ops)
from repro.verify.generate import ADT_KINDS, generate_trace
from repro.verify.trace import Trace, TraceRecorder, replay_trace

KINDS = {"list": CollectionKind.LIST, "set": CollectionKind.SET,
         "map": CollectionKind.MAP}


def _trace(kind="list", ops=()):
    baseline = {"list": "ArrayList", "set": "HashSet", "map": "HashMap"}
    return Trace(kind=KINDS[kind], src_type=baseline[kind],
                 baseline_impl=baseline[kind], ops=list(ops))


class TestLowering:
    def test_call_ops_lower_with_decoded_args(self):
        program = compile_trace(_trace("list", [
            ["add", ["i", 4]], ["get", 0], ["size"]]))
        assert [step[0] for step in program.steps] == [STEP_CALL] * 3
        assert program.steps[0][1:3] == ("add", (4,))
        assert program.steps[1][1:3] == ("get", (0,))
        assert program.n_handles == 0

    def test_structural_ops_lower_to_dedicated_steps(self):
        program = compile_trace(_trace("map", [
            ["init", [["p", [["s", "k"], ["i", 1]]]]],
            ["gc"],
            ["swap", "ArrayMap", {}],
            ["put_all", [["p", [["i", 1], ["i", 2]]]]],
            ["iter_new", 0, "items"],
        ]))
        kinds = [step[0] for step in program.steps]
        assert kinds == [STEP_INIT, STEP_GC, STEP_SWAP, STEP_PUT_ALL,
                        STEP_ITER_NEW]
        assert program.steps[0][1] == [("k", 1)]
        assert program.steps[3][1] == [(1, 2)]

    def test_interpreter_tolerance_is_mirrored_as_nops(self):
        # Unknown op, wrong arity, and an invalid iterator mode must
        # lower to no-ops exactly where _apply_op would return ["nop"].
        program = compile_trace(_trace("list", [
            ["frobnicate", ["i", 1]],
            ["add", ["i", 1], ["i", 2]],
            ["iter_new", 0, "items"],
        ]))
        assert [step[0] for step in program.steps] == [STEP_NOP] * 3

    def test_handles_stay_symbolic_until_bound(self):
        program = compile_trace(_trace("list", [["add", ["o", 3]]]))
        assert program.n_handles == 4
        assert program.steps[0][3] is True  # needs binding
        vm = RuntimeEnvironment(gc_threshold_bytes=None)
        instance = TraceInstance(vm, program)
        instance.run()
        assert instance.wrapper.impl.peek_values() == [instance.objects[3]]

    def test_prefix_recompiles_the_truncation(self):
        trace = generate_trace("list", seed=7, n_ops=30)
        program = compile_trace(trace)
        short = program.prefix(5)
        assert len(short) == 5
        assert short.trace.ops == trace.ops[:5]
        assert program.prefix(10 ** 6) is program


def _is_name_supersequence(perturbed, original):
    """Original op names appear in order inside the perturbed stream
    (duplication only ever inserts, never drops or reorders)."""
    names = iter(op[0] for op in perturbed)
    return all(any(name == wanted for name in names)
               for wanted in (op[0] for op in original))


class TestPerturbation:
    def test_deterministic_and_order_preserving(self):
        trace = generate_trace("map", seed=11, n_ops=40)
        first = perturb_ops(trace.ops, random.Random("p"), 0.5)
        second = perturb_ops(trace.ops, random.Random("p"), 0.5)
        assert first == second
        assert _is_name_supersequence(first, trace.ops)

    def test_strength_zero_is_identity(self):
        trace = generate_trace("set", seed=3, n_ops=40)
        assert perturb_ops(trace.ops, random.Random("p"), 0.0) == trace.ops

    def test_tags_survive_and_handles_stay_in_universe(self):
        ops = [["add", ["o", 2]], ["add_at", 0, ["i", 7]],
               ["set_at", 1, ["f", "1.5"]]]
        perturbed = perturb_ops(ops, random.Random("p"), 1.0)
        for op in perturbed:         # duplication may insert siblings
            if op[0] == "add":
                tag, handle = op[1]
                assert tag == "o" and 0 <= handle <= 2  # universe kept
            elif op[0] == "add_at":
                assert op[1] == 0                       # index untouched
                assert op[2][0] == "i"                  # tag preserved
            else:
                assert op[0] == "set_at" and op[2][0] == "f"

    def test_object_valued_traces_do_perturb(self):
        # Recorded benchmark traces are typically all-handle-valued;
        # the handle-redraw axis must bend those too.
        ops = [["put", ["o", index], ["o", index + 1]]
               for index in range(0, 20, 2)]
        assert perturb_ops(ops, random.Random("p"), 0.8) != ops

    def test_perturbed_trace_replays_clean(self):
        trace = generate_trace("map", seed=5, n_ops=40)
        perturbed = trace.with_ops(
            perturb_ops(trace.ops, random.Random("q"), 0.6))
        result = replay_trace(perturbed, perturbed.baseline_impl,
                              sanitize=True)
        assert result.violations == []


def _renumber(ops):
    """Handle indices normalised to first-occurrence order, so op
    streams from differently-populated handle tables compare equal."""
    mapping = {}

    def walk(node):
        if isinstance(node, list):
            if (len(node) == 2 and node[0] == "o"
                    and isinstance(node[1], int)):
                index = mapping.setdefault(node[1], len(mapping))
                return ["o", index]
            return [walk(item) for item in node]
        return node

    return [walk(op) for op in ops]


@settings(max_examples=25, deadline=None)
@given(adt=st.sampled_from(sorted(ADT_KINDS)),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_generator_compiler_recorder_closure(adt, seed):
    """Any generated trace, compiled and re-recorded, is itself again."""
    trace = generate_trace(adt, seed, n_ops=30)
    program = compile_trace(trace)

    vm = RuntimeEnvironment(gc_threshold_bytes=None)
    recorder = TraceRecorder()
    vm.set_tracer(recorder)
    instance = TraceInstance(vm, program, impl=trace.baseline_impl)
    instance.run()
    vm.collect()

    assert instance.dropped_at is None  # baseline never drops out
    assert len(recorder.traces) == 1
    retrace = recorder.traces[0]

    visible = [op for op in trace.ops if op[0] not in ("gc", "init")]
    assert _renumber(retrace.ops) == _renumber(visible)
