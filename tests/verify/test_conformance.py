"""Cross-core conformance harness for the compiled scenario library.

Every scenario in :mod:`repro.workloads.compiled` must uphold the
guarantees the verification subsystem established for hand-written
replays before it may claim to be a workload:

(a) **replay anchor** -- executing a scenario's source trace through the
    compiled path in the pure-replay posture is tick- and
    outcome-identical to :func:`repro.verify.trace.replay_trace`;
(b) **core-grid identity** -- a full scenario run produces a
    byte-identical tick count and GC-cycle record on every
    ``gc_core`` x ``vm_core`` combination;
(c) **sanitizer-clean** -- a full scenario run under a tight GC
    threshold triggers real collections and zero heap-soundness
    violations.

New scenarios added to ``SCENARIOS`` are picked up automatically; there
is no way to register a scenario that dodges this suite.
"""

import dataclasses

import pytest

from repro.runtime.vm import RuntimeEnvironment
from repro.verify.compile import TraceInstance, compile_trace
from repro.verify.sanitizer import HeapSanitizer
from repro.verify.trace import replay_trace
from repro.workloads.compiled import SCENARIOS, make_scenario

SCENARIO_NAMES = sorted(SCENARIOS)

GC_CORES = ("reference", "fast", "vector")
VM_CORES = ("reference", "fast")


def _scenario_observables(name, gc_core, vm_core):
    """One full scenario run's simulated observables under real GC."""
    vm = RuntimeEnvironment(gc_threshold_bytes=64 * 1024, gc_core=gc_core,
                            vm_core=vm_core)
    make_scenario(name).run(vm)
    vm.finish()
    return {
        "ticks": vm.now,
        "cycles": [dataclasses.asdict(cycle)
                   for cycle in vm.timeline.cycles],
    }


class TestScenarioLibraryShape:
    def test_at_least_eight_scenarios(self):
        assert len(SCENARIOS) >= 8

    def test_all_three_families_represented(self):
        families = {spec.family for spec in SCENARIOS.values()}
        assert {"heavy-tail", "phase-shift", "multi-tenant"} <= families

    def test_registered_name_matches_key(self):
        for name, spec in SCENARIOS.items():
            assert spec.name == name
            assert make_scenario(name).name == name


@pytest.mark.parametrize("name", SCENARIO_NAMES)
class TestConformance:
    def test_replay_anchor(self, name):
        """(a): compiled execution == replay_trace, per source trace."""
        workload = make_scenario(name)
        for trace in workload.source_traces():
            reference = replay_trace(trace, trace.baseline_impl)
            vm = RuntimeEnvironment(gc_threshold_bytes=None)
            instance = TraceInstance(vm, compile_trace(trace),
                                     impl=trace.baseline_impl,
                                     collect_outcomes=True)
            instance.run()
            vm.collect()
            assert vm.now == reference.ticks
            assert instance.outcomes == reference.outcomes
            assert instance.dropped_at == reference.dropped_at

    def test_core_grid_byte_identical(self, name):
        """(b): ticks and GC record equal on every core combination."""
        reference = _scenario_observables(name, "reference", "reference")
        assert reference["cycles"], "scenario must trigger real GC"
        for gc_core in GC_CORES:
            for vm_core in VM_CORES:
                if (gc_core, vm_core) == ("reference", "reference"):
                    continue
                leg = _scenario_observables(name, gc_core, vm_core)
                assert leg == reference, (gc_core, vm_core)

    def test_sanitizer_clean(self, name):
        """(c): a tight-threshold run collects repeatedly, soundly."""
        vm = RuntimeEnvironment(gc_threshold_bytes=32 * 1024)
        sanitizer = HeapSanitizer()
        sanitizer.attach(vm)
        make_scenario(name).run(vm)
        vm.finish()
        assert len(vm.timeline.cycles) >= 2
        assert sanitizer.violations == []

    def test_deterministic_across_runs(self, name):
        """Same seed, same scale -> byte-identical repeat runs."""
        first = _scenario_observables(name, "fast", "fast")
        second = _scenario_observables(name, "fast", "fast")
        assert first == second
