"""The committed trace corpus replays divergence-free.

``tests/verify/corpus/`` holds traces recorded from the real workloads
(``chameleon-repro fuzz --record``), so the differential check runs the
exact operation mixes the benchmarks perform -- not just the generator's
synthetic distribution.  Every file must load under the current format
and diff clean across the registry with the sanitizer attached.
"""

import json
import pathlib

import pytest

from repro.verify.trace import TRACE_FORMAT_VERSION, Trace, diff_trace

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_present():
    assert len(CORPUS) >= 10
    workloads = {path.name.split("-")[0] for path in CORPUS}
    assert {"tvla", "pmd", "bloat"} <= workloads
    kinds = {path.name.split("-")[1] for path in CORPUS}
    assert kinds == {"list", "set", "map"}


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_corpus_file_is_well_formed(path):
    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["format"] <= TRACE_FORMAT_VERSION
    trace = Trace.from_dict(data)
    assert len(trace.ops) >= 3
    assert trace.meta["workload"] == path.name.split("-")[0]


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_corpus_trace_diffs_clean(path):
    trace = Trace.from_json(path.read_text(encoding="utf-8"))
    report = diff_trace(trace, sanitize=True)
    assert report.ok, report.summary()
    for result in report.results.values():
        assert not result.violations
