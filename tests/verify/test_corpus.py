"""The committed trace corpus replays divergence-free.

``tests/verify/corpus/`` holds traces recorded from the real workloads
(``chameleon-repro fuzz --record``), so the differential check runs the
exact operation mixes the benchmarks perform -- not just the generator's
synthetic distribution.  Every file must load under the current format
and diff clean across the registry with the sanitizer attached.
"""

import json
import pathlib

import pytest

import repro.workloads.compiled as compiled_mod
from repro.verify.trace import (TRACE_FORMAT_VERSION, Trace, diff_trace,
                                ops_for_kind)

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))

# The scenario library's bundled source traces are corpus too: same
# format, same codec, same schema obligations.
SCENARIO_DIR = pathlib.Path(compiled_mod.__file__).parent / "scenarios"
ALL_TRACES = CORPUS + sorted(SCENARIO_DIR.glob("*.json"))

#: The codec's complete tag vocabulary (encode_value's output surface).
VALUE_TAGS = {"n", "b", "i", "f", "s", "o", "p", "l", "x"}

#: Ops that are structural rather than part of the ADT surface.
STRUCTURAL_OPS = {"init", "gc", "swap", "iter_new", "iter_next"}


def _collect_tags(node, tags):
    if isinstance(node, list):
        if node and isinstance(node[0], str) and node[0] in VALUE_TAGS:
            tags.add(node[0])
        for item in node:
            _collect_tags(item, tags)


def test_corpus_is_present():
    assert len(CORPUS) >= 10
    workloads = {path.name.split("-")[0] for path in CORPUS}
    assert {"tvla", "pmd", "bloat"} <= workloads
    kinds = {path.name.split("-")[1] for path in CORPUS}
    assert kinds == {"list", "set", "map"}


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_corpus_file_is_well_formed(path):
    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["format"] <= TRACE_FORMAT_VERSION
    trace = Trace.from_dict(data)
    assert len(trace.ops) >= 3
    assert trace.meta["workload"] == path.name.split("-")[0]


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_corpus_trace_diffs_clean(path):
    trace = Trace.from_json(path.read_text(encoding="utf-8"))
    report = diff_trace(trace, sanitize=True)
    assert report.ok, report.summary()
    for result in report.results.values():
        assert not result.violations


@pytest.mark.parametrize("path", ALL_TRACES, ids=lambda p: p.name)
def test_codec_round_trip_is_byte_exact(path):
    """decode -> encode reproduces the committed bytes exactly, so a
    codec or schema change can never silently orphan the corpus."""
    text = path.read_text(encoding="utf-8")
    trace = Trace.from_json(text)
    assert trace.to_json(indent=2) == text


@pytest.mark.parametrize("path", ALL_TRACES, ids=lambda p: p.name)
def test_tag_and_op_vocabulary(path):
    """Every committed trace speaks the documented schema: value tags
    from the codec's vocabulary, op names from the recorded surface."""
    trace = Trace.from_json(path.read_text(encoding="utf-8"))
    known_ops = set(ops_for_kind(trace.kind)) | STRUCTURAL_OPS
    tags = set()
    for op in trace.ops:
        assert op[0] in known_ops, op
        _collect_tags(op[1:], tags)
    for result in trace.results:
        _collect_tags(result, tags)
    assert tags <= VALUE_TAGS
    assert tags, "a committed trace should carry at least one value"
