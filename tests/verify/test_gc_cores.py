"""Differential byte-identity of the interchangeable GC cores.

``MarkSweepGC`` ships three mark/account cores (``reference``, ``fast``,
``vector``) that must be observably indistinguishable: same charged
ticks, same per-cycle statistics (including dict *insertion order*,
which JSON round-trips preserve), same freed-object sequence, same
surviving heap.  This suite checks that contract differentially --
over the committed trace corpus (real workload operation mixes), over
generated fuzz traces, and over raw synthetic heap shapes driven
straight through ``collect()`` -- with the heap sanitizer attached to
the non-reference replays.
"""

import json
import pathlib
import random

import pytest

from repro.memory.gc import MarkSweepGC, _have_numpy
from repro.memory.heap import SimHeap
from repro.verify.generate import generate_trace
from repro.verify.trace import BASELINE_IMPLS, Trace, replay_trace

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))

CORES = ("reference", "fast", "vector")


def _replay(trace: Trace, core: str):
    impl = BASELINE_IMPLS[trace.kind]
    return replay_trace(trace, impl, gc_core=core, gc_detail=True,
                        sanitize=(core != "reference"))


def _assert_identical(trace: Trace) -> None:
    reference = _replay(trace, "reference")
    assert reference.gc_detail["cycles"], "replay never collected"
    for core in CORES[1:]:
        result = _replay(trace, core)
        assert not result.violations, \
            f"{core}: sanitizer violations {result.violations}"
        assert result.ticks == reference.ticks, f"{core}: tick divergence"
        assert result.outcomes == reference.outcomes, \
            f"{core}: observable outcome divergence"
        # Full GC record, sweep order included.  Comparing the JSON
        # serialisation also pins dict insertion order (type
        # distributions, per-context stats), the strictest observable.
        assert json.dumps(result.gc_detail["freed_ids"]) \
            == json.dumps(reference.gc_detail["freed_ids"]), \
            f"{core}: freed-object sequence divergence"
        assert result.gc_detail["surviving_ids"] \
            == reference.gc_detail["surviving_ids"], \
            f"{core}: surviving-heap divergence"
        assert json.dumps(result.gc_detail["cycles"]) \
            == json.dumps(reference.gc_detail["cycles"]), \
            f"{core}: per-cycle GC stats divergence"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_corpus_traces_identical_across_cores(path):
    _assert_identical(Trace.from_json(path.read_text(encoding="utf-8")))


@pytest.mark.parametrize("adt", ["list", "set", "map"])
@pytest.mark.parametrize("seed", range(6))
def test_generated_traces_identical_across_cores(adt, seed):
    _assert_identical(generate_trace(adt, seed=seed, n_ops=40))


# ----------------------------------------------------------------------
# Raw-heap property test: random object graphs through collect()
# ----------------------------------------------------------------------


def _random_heap(seed: int) -> SimHeap:
    rng = random.Random(seed)
    heap = SimHeap()
    objects = [heap.allocate(rng.choice(["A", "B", "C"]),
                             rng.choice([16, 24, 48]))
               for _ in range(rng.randrange(30, 120))]
    for obj in objects:
        for _ in range(rng.randrange(0, 4)):
            obj.add_ref(rng.choice(objects).obj_id)
    for obj in rng.sample(objects, rng.randrange(1, 8)):
        heap.add_root(obj)
    return heap


def _collect_record(seed: int, core: str) -> dict:
    import dataclasses

    heap = _random_heap(seed)
    charged = []
    gc = MarkSweepGC(heap, charge=charged.append, core=core)
    freed = []
    cycles = []
    for tick in range(3):
        stats = gc.collect(tick=tick)
        cycles.append(dataclasses.asdict(stats))
        # Churn between cycles: drop a root, add fresh garbage.
        if heap._roots:
            first_root = heap.get(next(iter(heap._roots)))
            heap.remove_root(first_root)
        heap.allocate("Churn", 16)
    freed = [heap.total_freed_objects, heap.total_freed_bytes]
    return {
        "charged": charged,
        "cycles": cycles,
        "freed": freed,
        "surviving": sorted(heap._objects),
        "live_bytes": gc.live_bytes_estimate(),
    }


@pytest.mark.parametrize("seed", range(10))
def test_random_heaps_identical_across_cores(seed):
    reference = _collect_record(seed, "reference")
    for core in CORES[1:]:
        record = _collect_record(seed, core)
        assert json.dumps(record) == json.dumps(reference), \
            f"core {core!r} diverges from reference on seed {seed}"


def test_vector_core_degrades_without_numpy(monkeypatch):
    import repro.memory.gc as gc_mod

    monkeypatch.setattr(gc_mod, "_NUMPY", None)
    monkeypatch.setattr(gc_mod, "_NUMPY_CHECKED", True)
    gc = MarkSweepGC(SimHeap(), core="vector")
    assert gc.core == "fast"


def test_vector_core_engages_with_numpy():
    if not _have_numpy():
        pytest.skip("numpy unavailable in this environment")
    gc = MarkSweepGC(SimHeap(), core="vector")
    assert gc.core == "vector"
