"""Determinism and shape of the seeded trace generator."""

import pytest

from repro.collections.base import CollectionKind
from repro.verify.generate import ADT_KINDS, SWAP_TARGETS, generate_trace
from repro.verify.trace import (BASELINE_IMPLS, Trace, diff_trace,
                                ops_for_kind)


class TestDeterminism:
    @pytest.mark.parametrize("adt", sorted(ADT_KINDS))
    def test_same_seed_same_json(self, adt):
        first = generate_trace(adt, seed=7).to_json()
        second = generate_trace(adt, seed=7).to_json()
        assert first == second

    def test_different_seeds_differ(self):
        assert generate_trace("list", 0).ops != generate_trace("list", 1).ops

    def test_n_ops_changes_the_stream(self):
        """n_ops is part of the RNG seed string, so it selects a distinct
        trace rather than a prefix -- a truncated CI repro must rerun with
        the logged n_ops, which is why it lives in meta."""
        trace = generate_trace("map", 3, n_ops=12)
        assert trace.meta["n_ops"] == 12
        assert trace.ops != generate_trace("map", 3, n_ops=40).ops[:12]

    def test_generated_trace_survives_json_round_trip(self):
        trace = generate_trace("set", 11)
        assert Trace.from_json(trace.to_json()).ops == trace.ops


class TestShape:
    @pytest.mark.parametrize("adt", sorted(ADT_KINDS))
    def test_kind_and_baseline(self, adt):
        trace = generate_trace(adt, seed=0)
        kind = ADT_KINDS[adt]
        assert trace.kind is kind
        assert trace.baseline_impl == BASELINE_IMPLS[kind]
        assert len(trace.ops) >= 40

    @pytest.mark.parametrize("adt", sorted(ADT_KINDS))
    def test_ops_stay_on_the_replayable_surface(self, adt):
        surface = set(ops_for_kind(ADT_KINDS[adt]))
        surface.update(["init", "gc", "swap", "iter_new", "iter_next"])
        for seed in range(6):
            for op in generate_trace(adt, seed).ops:
                assert op[0] in surface, op

    @pytest.mark.parametrize("adt", sorted(ADT_KINDS))
    def test_swaps_target_full_surface_impls(self, adt):
        kind = ADT_KINDS[adt]
        for seed in range(8):
            for op in generate_trace(adt, seed).ops:
                if op[0] == "swap":
                    assert op[1] in SWAP_TARGETS[kind]

    def test_unknown_adt_rejected(self):
        with pytest.raises(KeyError):
            generate_trace("deque", 0)


class TestGeneratedTracesDiffClean:
    """The in-suite fuzz smoke: a handful of seeds per ADT must replay
    divergence-free across the whole registry (the CI fuzz-smoke leg runs
    the wider campaign)."""

    @pytest.mark.parametrize("adt", sorted(ADT_KINDS))
    @pytest.mark.parametrize("seed", range(3))
    def test_seed_diffs_clean(self, adt, seed):
        report = diff_trace(generate_trace(adt, seed), sanitize=True)
        assert report.ok, report.summary()
        for result in report.results.values():
            assert not result.violations
