"""Heap sanitizer: invariant checks, corruption detection, purity."""

import pytest

from repro.collections.wrappers import ChameleonList, ChameleonMap
from repro.runtime.vm import RuntimeEnvironment
from repro.verify.sanitizer import HeapSanitizer, sanitized_vms


def _vm():
    return RuntimeEnvironment(gc_threshold_bytes=None)


class TestCleanRuns:
    def test_collection_heavy_run_has_no_violations(self):
        vm = _vm()
        sanitizer = HeapSanitizer().attach(vm)
        holder = vm.allocate_data("Holder", ref_fields=4)
        vm.add_root(holder)
        for i in range(12):
            mapping = ChameleonMap(vm, src_type="HashMap")
            holder.add_ref(mapping.heap_obj.obj_id)
            for k in range(6):
                mapping.put(k, k)
            lst = ChameleonList(vm).pin()
            lst.add_all(range(5))
            lst.unpin()  # becomes garbage for the next cycle
            if i % 4 == 3:
                vm.collect()
        vm.collect()
        assert sanitizer.cycles_checked >= 4
        assert sanitizer.ok, sanitizer.report()
        assert "no violations" in sanitizer.report()

    def test_sanitizer_is_tick_pure(self):
        """Attaching the sanitizer must not move the virtual clock or the
        allocation ledger: Table 3 numbers from a sanitized run are the
        run's real numbers."""
        def drive(vm):
            lst = ChameleonList(vm).pin()
            for i in range(40):
                lst.add(i)
            list(lst.iterate())
            vm.collect()
            return (vm.now, vm.heap.total_allocated_bytes,
                    vm.heap.total_allocated_objects, vm.gc.cycle_count)

        plain = drive(_vm())
        vm = _vm()
        sanitizer = HeapSanitizer().attach(vm)
        sanitized = drive(vm)
        assert sanitized == plain
        assert sanitizer.cycles_checked == 1


class TestCorruptionDetection:
    def test_dangling_reference_is_reported(self):
        vm = _vm()
        sanitizer = HeapSanitizer().attach(vm)
        obj = vm.allocate_data("Corrupt", ref_fields=1)
        vm.add_root(obj)
        obj.add_ref(999_999_999)  # edge to an object that never existed
        vm.collect()
        assert not sanitizer.ok
        assert any(v.check == "no-dangling" for v in sanitizer.violations)
        assert "999999999" in sanitizer.report()

    def test_negative_multiplicity_is_reported(self):
        vm = _vm()
        sanitizer = HeapSanitizer().attach(vm)
        obj = vm.allocate_data("Corrupt", ref_fields=1)
        other = vm.allocate_data("Elem", int_fields=1)
        vm.add_root(obj)
        vm.add_root(other)
        obj.refs[other.obj_id] = -1  # bypass the KeyError guard
        vm.collect()
        assert any(v.check == "no-dangling"
                   and "negative-multiplicity" in v.detail
                   for v in sanitizer.violations)

    def test_strict_mode_raises_on_first_violation(self):
        vm = _vm()
        HeapSanitizer(strict=True).attach(vm)
        obj = vm.allocate_data("Corrupt", ref_fields=1)
        vm.add_root(obj)
        obj.add_ref(999_999_999)
        with pytest.raises(AssertionError, match="no-dangling"):
            vm.collect()

    def test_violations_are_bounded_per_check(self):
        vm = _vm()
        sanitizer = HeapSanitizer(max_violations=3).attach(vm)
        holder = vm.allocate_data("Corrupt", ref_fields=8)
        vm.add_root(holder)
        for bogus in range(10):
            holder.add_ref(10_000_000 + bogus)
        vm.collect()
        dangling = [v for v in sanitizer.violations
                    if v.check == "no-dangling"]
        assert len(dangling) == 3

    def test_detach_stops_checking(self):
        vm = _vm()
        sanitizer = HeapSanitizer().attach(vm)
        vm.collect()
        sanitizer.detach(vm)
        obj = vm.allocate_data("Corrupt", ref_fields=1)
        vm.add_root(obj)
        obj.add_ref(999_999_999)
        vm.collect()
        assert sanitizer.cycles_checked == 1
        assert sanitizer.ok


class TestSanitizedVmsContext:
    def test_attaches_to_every_vm_created_inside(self):
        with sanitized_vms() as sanitizer:
            first, second = _vm(), _vm()
            first.collect()
            second.collect()
        assert sanitizer.cycles_checked == 2
        assert sanitizer.ok

    def test_does_not_touch_vms_created_outside(self):
        with sanitized_vms() as sanitizer:
            pass
        vm = _vm()
        vm.collect()
        assert sanitizer.cycles_checked == 0
