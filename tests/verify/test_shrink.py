"""Shrinker + the planted-bug acceptance path: an intentional semantics
bug in ``ArrayMapImpl`` must be caught by the fuzz campaign, minimised to
a handful of ops, and reproduce from the emitted standalone script."""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.collections.base import CollectionKind
from repro.collections.maps import ArrayMapImpl
from repro.verify.fuzz import run_fuzz
from repro.verify.shrink import (ShrinkStats, make_failure_checker,
                                 shrink_trace, write_repro_script)
from repro.verify.trace import Trace, diff_trace

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: The plant: remove_key drops the mapping but reports nothing removed --
#: a classic lost-return-value bug.  HashMap (the baseline) returns the
#: removed value, so any trace that removes a present key diverges.
PLANT_BUG_MODULE = '''\
"""Replants the intentional ArrayMap bug for out-of-process repros."""
from repro.collections.maps import ArrayMapImpl

_original = ArrayMapImpl.remove_key


def _lossy_remove_key(self, key):
    _original(self, key)
    return None


ArrayMapImpl.remove_key = _lossy_remove_key
'''


def _plant(monkeypatch):
    original = ArrayMapImpl.remove_key

    def lossy_remove_key(self, key):
        original(self, key)
        return None

    monkeypatch.setattr(ArrayMapImpl, "remove_key", lossy_remove_key)


def _failing_trace():
    trace = Trace(kind=CollectionKind.MAP, src_type="java/util/HashMap",
                  baseline_impl="HashMap", context="test/planted")
    trace.ops = [
        ["put", ["s", "a"], ["i", 41]],
        ["size"],
        ["put", ["s", "b"], ["i", 7]],
        ["get", ["s", "a"]],
        ["contains_key", ["s", "b"]],
        ["remove_key", ["s", "a"]],   # the only op that exposes the plant
        ["is_empty"],
        ["clear"],
    ]
    return trace


class TestShrinkMechanics:
    def test_shrinks_to_minimal_failing_pair(self, monkeypatch):
        _plant(monkeypatch)
        trace = _failing_trace()
        signature = diff_trace(trace).failure_signature()
        assert signature == ("ArrayMap", "remove_key")

        stats = ShrinkStats()
        shrunk = shrink_trace(trace,
                              make_failure_checker(signature), stats=stats)
        # Minimal repro: one put, one remove_key of the same key (a lone
        # remove_key misses and returns None everywhere).
        assert len(shrunk.ops) == 2
        assert [op[0] for op in shrunk.ops] == ["put", "remove_key"]
        assert shrunk.meta["shrunk_from"] == 8
        assert shrunk.meta["shrink_replays"] == stats.replays > 0
        assert stats.removed_ops == 6
        # Value minimisation shrank the stored value (41 -> 0) but had to
        # keep the keys: minimising either key alone breaks the put/remove
        # pairing and loses the failure, so ddmin correctly rejects it.
        assert shrunk.ops[0][2] == ["i", 0]
        assert shrunk.ops[0][1] == ["s", "a"]
        assert shrunk.ops[1][1] == ["s", "a"]
        assert stats.minimised_values >= 1
        # And the shrunk trace still fails with the same signature.
        assert diff_trace(shrunk).failure_signature() == signature

    def test_shrink_is_deterministic(self, monkeypatch):
        _plant(monkeypatch)
        checker = make_failure_checker(("ArrayMap", "remove_key"))
        first = shrink_trace(_failing_trace(), checker)
        second = shrink_trace(_failing_trace(), checker)
        assert first.ops == second.ops

    def test_without_plant_the_trace_is_clean(self):
        report = diff_trace(_failing_trace())
        assert report.ok, report.summary()


class TestPlantedBugEndToEnd:
    def _campaign(self, tmp_path):
        return run_fuzz(["map"], seeds=20, out_dir=str(tmp_path / "out"),
                        shrink=True, sanitize=False, max_failures=1)

    def test_fuzz_catches_shrinks_and_emits_repro(self, monkeypatch,
                                                  tmp_path):
        _plant(monkeypatch)
        result = self._campaign(tmp_path)
        assert not result.ok
        failure = result.failures[0]
        assert failure.report.failure_signature()[1] == "remove_key"
        assert failure.shrunk is not None
        assert len(failure.shrunk.ops) <= 10
        assert failure.repro_path is not None
        assert os.path.exists(failure.repro_path)
        json_twin = failure.repro_path[:-3] + ".json"
        assert os.path.exists(json_twin)
        assert "FAILURE" in result.summary()

        # The emitted script has no prelude, so in a clean interpreter
        # (no plant) it must report agreement and exit 0.
        clean = subprocess.run(
            [sys.executable, failure.repro_path],
            capture_output=True, text=True, cwd=str(tmp_path),
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
        assert clean.returncode == 0, clean.stdout + clean.stderr

        # With the plant re-applied via the prelude hook, the same trace
        # must reproduce the divergence standalone.
        (tmp_path / "plant_bug.py").write_text(PLANT_BUG_MODULE,
                                               encoding="utf-8")
        planted_script = write_repro_script(
            failure.shrunk, str(tmp_path / "repro_planted.py"),
            prelude="import plant_bug")
        planted = subprocess.run(
            [sys.executable, planted_script],
            capture_output=True, text=True, cwd=str(tmp_path),
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join([str(REPO_ROOT / "src"),
                                                str(tmp_path)])})
        assert planted.returncode == 1, planted.stdout + planted.stderr
        assert "ArrayMap" in planted.stdout

    def test_campaign_is_clean_without_the_plant(self, tmp_path):
        result = self._campaign(tmp_path)
        assert result.ok, result.summary()
        assert not (tmp_path / "out").exists()  # no artifacts when clean
