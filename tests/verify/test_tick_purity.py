"""Recorder purity: tracing must not perturb the simulation.

The whole point of recording real workloads is that the captured corpus
reflects what the benchmark actually did.  If attaching the recorder
moved the virtual clock, the allocation ledger, or GC timing by even one
byte, the recorded traces (and every Table 3 statistic of the traced run)
would describe a subtly different execution.  These tests pin
byte-identical equality between a plain run and a traced run of the same
workload -- the satellite regression guard for the ``vm.tracer`` hook.
"""

from repro.core.chameleon import Chameleon
from repro.verify.trace import TraceRecorder
from repro.workloads import TvlaWorkload


def _fingerprint(vm):
    return (vm.now,
            vm.heap.total_allocated_bytes,
            vm.heap.total_allocated_objects,
            vm.heap.occupied_bytes,
            vm.gc.cycle_count)


def _run(workload, recorder=None):
    vm = Chameleon().make_vm()
    if recorder is not None:
        recorder.install(vm)
    workload.run(vm)
    vm.finish()
    return _fingerprint(vm)


class TestTickPurity:
    def test_traced_run_is_byte_identical(self):
        plain = _run(TvlaWorkload(seed=1, scale=0.05))
        recorder = TraceRecorder()
        traced = _run(TvlaWorkload(seed=1, scale=0.05), recorder)
        assert traced == plain
        assert recorder.traces  # and it actually recorded something

    def test_traced_run_crosses_gc(self):
        """The equality above is only meaningful if the run collects: GC
        timing is the most perturbation-sensitive observable."""
        plain = _run(TvlaWorkload(seed=1, scale=0.05))
        assert plain[-1] >= 1

    def test_capped_recorder_is_also_pure(self):
        """Truncation and src_type filtering take different recorder code
        paths; they must be just as invisible."""
        plain = _run(TvlaWorkload(seed=1, scale=0.05))
        recorder = TraceRecorder(max_ops_per_trace=2, max_traces=3,
                                 src_types={"HashMap"})
        traced = _run(TvlaWorkload(seed=1, scale=0.05), recorder)
        assert traced == plain
