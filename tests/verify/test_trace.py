"""Trace document, value codec, recorder and differ."""

import pytest

from repro.collections.base import CollectionKind, UnsupportedOperation
from repro.collections.registry import default_registry
from repro.collections.wrappers import ChameleonList, ChameleonMap
from repro.verify.trace import (BASELINE_IMPLS, TRACE_FORMAT_VERSION,
                                HandleTable, Trace, TraceRecorder,
                                decode_value, diff_trace, eligible_impls,
                                encode_value, max_handle, replay_trace)


def _round_trip(value, handles=None):
    handles = handles if handles is not None else HandleTable()
    return decode_value(encode_value(value, handles), handles)


class TestValueCodec:
    @pytest.mark.parametrize("value", [None, 0, -7, 41, "", "k3", True,
                                       False, 0.5, -19.5, 1e300])
    def test_scalars_round_trip(self, value):
        decoded = _round_trip(value)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_bool_is_not_collapsed_into_int(self):
        """bool is an int subclass; the codec must keep the tags apart or
        IntArray/BoolArray acceptance would diverge between record and
        replay."""
        handles = HandleTable()
        assert encode_value(True, handles) == ["b", True]
        assert encode_value(1, handles) == ["i", 1]

    def test_float_uses_exact_repr(self):
        handles = HandleTable()
        tag, text = encode_value(0.1, handles)
        assert tag == "f"
        assert isinstance(text, str)
        assert decode_value(["f", text], handles) == 0.1

    def test_heap_objects_keep_identity_through_handles(self, vm):
        handles = HandleTable()
        first = vm.allocate_data("Elem", int_fields=1)
        second = vm.allocate_data("Elem", int_fields=1)
        enc_first = encode_value(first, handles)
        enc_second = encode_value(second, handles)
        assert enc_first == ["o", 0]
        assert enc_second == ["o", 1]
        # Same object again: same handle, and decode resolves back to it.
        assert encode_value(first, handles) == enc_first
        assert decode_value(enc_first, handles) is first

    def test_pairs_and_lists_nest(self, vm):
        handles = HandleTable()
        obj = vm.allocate_data("Elem", int_fields=1)
        value = [("k", 1), ("j", obj)]
        assert _round_trip(value, handles) == [("k", 1), ("j", obj)]

    def test_opaque_fallback_token(self):
        handles = HandleTable()
        enc = encode_value({1, 2}, handles)
        assert enc[0] == "x"
        assert decode_value(enc, handles) == enc[1]  # replayed as token

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            decode_value(["z", 1], HandleTable())

    def test_max_handle_scans_nested_ops(self):
        ops = [["add", ["o", 2]], ["add_all", [["o", 5], ["i", 9]]]]
        assert max_handle(ops) == 5
        assert max_handle([["size"]]) == -1


class TestTraceDocument:
    def _sample(self):
        trace = Trace(kind=CollectionKind.LIST, src_type="ArrayList",
                      baseline_impl="ArrayList", context="test/sample")
        trace.ops = [["add", ["i", 1]], ["size"]]
        trace.results = [["ok", ["n"]], ["ok", ["i", 1]]]
        trace.meta = {"origin": "unit-test"}
        return trace

    def test_json_round_trip(self):
        trace = self._sample()
        restored = Trace.from_json(trace.to_json(indent=2))
        assert restored.kind is trace.kind
        assert restored.src_type == trace.src_type
        assert restored.baseline_impl == trace.baseline_impl
        assert restored.context == trace.context
        assert restored.ops == trace.ops
        assert restored.results == trace.results
        assert restored.meta == trace.meta

    def test_newer_format_rejected(self):
        data = self._sample().to_dict()
        data["format"] = TRACE_FORMAT_VERSION + 1
        with pytest.raises(ValueError):
            Trace.from_dict(data)

    def test_with_ops_drops_stale_results(self):
        trace = self._sample()
        pruned = trace.with_ops([["size"]])
        assert pruned.ops == [["size"]]
        assert pruned.results == []
        assert pruned.meta == trace.meta
        assert len(trace.ops) == 2  # original untouched


class TestRecorder:
    def test_records_ops_and_outcomes(self, vm):
        recorder = TraceRecorder().install(vm)
        lst = ChameleonList(vm).pin()
        lst.add(1)
        lst.add(2)
        assert lst.get(0) == 1
        assert list(lst.iterate()) == [1, 2]
        with pytest.raises(IndexError):
            lst.get(99)

        assert len(recorder.traces) == 1
        trace = recorder.traces[0]
        names = [op[0] for op in trace.ops]
        assert names == ["add", "add", "get", "iter_new",
                         "iter_next", "iter_next", "iter_next", "get"]
        assert trace.results[2] == ["ok", ["i", 1]]
        assert trace.results[6] == ["stop"]       # exhaustion recorded
        assert trace.results[7] == ["raise", "IndexError"]

    def test_bulk_sources_recorded_by_effect(self, vm):
        recorder = TraceRecorder().install(vm)
        lst = ChameleonList(vm).pin()
        lst.add_all(iter([3, 4]))  # one-shot iterable
        trace = recorder.traces[0]
        assert trace.ops[0] == ["add_all", [["i", 3], ["i", 4]]]
        assert lst.snapshot() == [3, 4]  # the op itself still happened

    def test_replay_reproduces_recorded_outcomes(self, vm):
        recorder = TraceRecorder().install(vm)
        mapping = ChameleonMap(vm).pin()
        mapping.put("a", 1)
        mapping.put("a", 2)
        assert mapping.get("a") == 2
        mapping.remove_key("a")
        assert mapping.is_empty()
        trace = recorder.traces[0]

        result = replay_trace(trace, trace.baseline_impl)
        assert result.dropped_at is None
        assert result.outcomes == trace.results
        assert not result.violations

    def test_max_ops_truncates(self, vm):
        recorder = TraceRecorder(max_ops_per_trace=2).install(vm)
        lst = ChameleonList(vm).pin()
        for i in range(5):
            lst.add(i)
        trace = recorder.traces[0]
        assert len(trace.ops) == 2
        assert trace.meta.get("truncated") is True

    def test_src_type_filter(self, vm):
        recorder = TraceRecorder(src_types={"HashMap"}).install(vm)
        ChameleonList(vm).pin()
        ChameleonMap(vm, src_type="HashMap").pin()
        assert [t.kind for t in recorder.traces] == [CollectionKind.MAP]

    def test_max_traces_cap(self, vm):
        recorder = TraceRecorder(max_traces=1).install(vm)
        ChameleonList(vm).pin()
        ChameleonList(vm).pin()
        assert len(recorder.traces) == 1


class TestEligibleImpls:
    def _list_trace(self, ops):
        trace = Trace(kind=CollectionKind.LIST, src_type="ArrayList",
                      baseline_impl="ArrayList")
        trace.ops = ops
        return trace

    def test_duplicate_adds_exclude_dedup_backed_list(self):
        names = eligible_impls(self._list_trace(
            [["add", ["i", 1]], ["add", ["i", 1]]]))
        assert "LinkedHashSet" not in names
        assert "DoubleArray" not in names  # ints stored
        assert "ArrayList" in names and "LinkedList" in names

    def test_distinct_floats_keep_double_array(self):
        names = eligible_impls(self._list_trace(
            [["add", ["f", "0.5"]], ["add", ["f", "1.5"]]]))
        assert "DoubleArray" in names
        assert "LinkedHashSet" in names

    def test_non_list_kinds_take_full_registry(self):
        for kind in (CollectionKind.SET, CollectionKind.MAP):
            trace = Trace(kind=kind, src_type="x",
                          baseline_impl=BASELINE_IMPLS[kind])
            trace.ops = [["add", ["i", 1]], ["add", ["i", 1]]] \
                if kind is CollectionKind.SET else [["size"]]
            assert eligible_impls(trace) \
                == list(default_registry().names_for_kind(kind))


class TestDiffTrace:
    def test_recorded_trace_diffs_clean_across_registry(self, vm):
        recorder = TraceRecorder().install(vm)
        lst = ChameleonList(vm).pin()
        lst.add_all([1, 2, 3])
        lst.add_at(1, 9)
        lst.remove_value(2)
        assert lst.index_of(9) == 1
        list(lst.iterate())
        report = diff_trace(recorder.traces[0])
        assert report.ok, report.summary()
        assert report.failure_signature() is None

    def test_unsupported_impl_drops_out_without_divergence(self, vm):
        """SingletonList cannot hold two elements; it must register as a
        drop-out, never as a divergence."""
        recorder = TraceRecorder().install(vm)
        lst = ChameleonList(vm).pin()
        lst.add(1)
        lst.add(2)
        report = diff_trace(recorder.traces[0])
        assert report.ok, report.summary()
        assert report.results["SingletonList"].dropped_at == 1

    def test_planted_divergence_is_detected_and_attributed(self, vm,
                                                           monkeypatch):
        from repro.collections.lists import LinkedListImpl
        monkeypatch.setattr(LinkedListImpl, "contains",
                            lambda self, value: False)
        recorder = TraceRecorder().install(vm)
        lst = ChameleonList(vm).pin()
        lst.add(5)
        lst.contains(5)
        report = diff_trace(recorder.traces[0])
        assert not report.ok
        assert report.failure_signature() == ("LinkedList", "contains")

    def test_unsupported_operation_propagates_to_caller(self, vm):
        """The recorder re-raises after noting the drop-out, so recording
        does not change what the program observes."""
        recorder = TraceRecorder().install(vm)
        lst = ChameleonList(vm, impl="EmptyList").pin()
        with pytest.raises(UnsupportedOperation):
            lst.add(1)
        assert recorder.traces[0].results[-1] == ["unsup"]
