"""Differential byte-identity of the operation-pipeline cores.

``RuntimeEnvironment`` ships two op-pipeline cores (``reference``,
``fast``) that must be observably indistinguishable: same virtual ticks,
same GC cycle statistics, same profiler reports (down to the JSON
serialisation, which pins dict insertion order).  The fast core batches
tick charges into ``clock.pending`` and dispatches recorded wrapper
operations through inline-cached plans, so the hazards this suite hunts
are *flush boundaries* (a clock read that misses pending charges) and
*stale plans* (an op recorded against a plan built before
``set_tracer`` / ``enable_profiling`` / ``disable_profiling`` /
``swap_to`` changed what recording must do).

Checked differentially over the committed trace corpus, generated fuzz
traces, and all six paper workloads, across the full
``vm_core x gc_core`` grid.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.collections.wrappers import (ChameleonList, ChameleonMap,
                                        ChameleonSet)
from repro.core.chameleon import Chameleon
from repro.core.config import ToolConfig
from repro.memory.heap import HeapObject, OutOfMemoryError
from repro.profiler.profiler import SemanticProfiler
from repro.profiler.report import build_report
from repro.runtime.vm import RuntimeEnvironment
from repro.verify.generate import generate_trace
from repro.verify.trace import BASELINE_IMPLS, Trace, replay_trace
from repro.workloads import BENCHMARKS

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))

VM_CORES = RuntimeEnvironment.VM_CORES
GC_CORES = ("reference", "fast", "vector")
GRID = [(vm_core, gc_core)
        for vm_core in VM_CORES for gc_core in GC_CORES]


# ----------------------------------------------------------------------
# Trace replay across the full core grid
# ----------------------------------------------------------------------


def _replay(trace: Trace, vm_core: str, gc_core: str):
    impl = BASELINE_IMPLS[trace.kind]
    baseline = (vm_core, gc_core) == ("reference", "reference")
    return replay_trace(trace, impl, vm_core=vm_core, gc_core=gc_core,
                        gc_detail=True, sanitize=not baseline)


def _assert_identical(trace: Trace) -> None:
    reference = _replay(trace, "reference", "reference")
    for vm_core, gc_core in GRID[1:]:
        leg = f"vm={vm_core} gc={gc_core}"
        result = _replay(trace, vm_core, gc_core)
        assert not result.violations, \
            f"{leg}: sanitizer violations {result.violations}"
        assert result.ticks == reference.ticks, f"{leg}: tick divergence"
        assert result.outcomes == reference.outcomes, \
            f"{leg}: observable outcome divergence"
        assert result.gc_detail["freed_ids"] \
            == reference.gc_detail["freed_ids"], \
            f"{leg}: freed-object sequence divergence"
        assert result.gc_detail["surviving_ids"] \
            == reference.gc_detail["surviving_ids"], \
            f"{leg}: surviving-heap divergence"
        assert json.dumps(result.gc_detail["cycles"]) \
            == json.dumps(reference.gc_detail["cycles"]), \
            f"{leg}: per-cycle GC stats divergence"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_corpus_traces_identical_across_cores(path):
    _assert_identical(Trace.from_json(path.read_text(encoding="utf-8")))


@pytest.mark.parametrize("adt", ["list", "set", "map"])
@pytest.mark.parametrize("seed", range(4))
def test_generated_traces_identical_across_cores(adt, seed):
    _assert_identical(generate_trace(adt, seed=seed, n_ops=40))


# ----------------------------------------------------------------------
# Full profiled workload runs: the end-to-end observable record
# ----------------------------------------------------------------------


def _profile_record(workload_class, vm_core: str) -> dict:
    tool = Chameleon(ToolConfig(vm_core=vm_core))
    workload = workload_class(seed=2009, scale=0.02)
    vm = tool.make_vm(profiler=tool._make_profiler())
    workload.run(vm)
    vm.finish()
    report = build_report(vm.profiler, vm.timeline, vm.contexts)
    return {
        "ticks": vm.now,
        "gc_cycles": len(vm.timeline.cycles),
        "allocated": vm.heap.total_allocated_objects,
        "freed": vm.heap.total_freed_objects,
        # The strictest observable: the whole rendered report, dict
        # order included.
        "report": json.dumps(report.to_dict(), sort_keys=True,
                             default=repr),
    }


@pytest.mark.parametrize("workload_class", BENCHMARKS,
                         ids=lambda w: w.name)
def test_workload_profile_runs_identical_across_cores(workload_class):
    reference = _profile_record(workload_class, "reference")
    assert reference["gc_cycles"] > 0, "run never collected"
    fast = _profile_record(workload_class, "fast")
    for key in reference:
        assert fast[key] == reference[key], \
            f"{workload_class.name}: {key} diverges under vm_core=fast"


# ----------------------------------------------------------------------
# Flush boundaries: vm.now mid-burst (satellite: accumulator flush)
# ----------------------------------------------------------------------


def _burst(vm, read_points):
    """A fixed op burst with ``vm.now`` read at the given op indices;
    returns the observed (index, ticks) pairs plus the final clock."""
    lst = ChameleonList(vm)
    lst.pin()
    mapping = ChameleonMap(vm)
    mapping.pin()
    observed = []
    for i in range(64):
        lst.add(i)
        mapping.put(i, i)
        lst.get(i // 2)
        mapping.contains_key(i)
        if i in read_points:
            observed.append((i, vm.now))
    vm.finish()
    return observed, vm.now


class TestClockFlushBoundaries:
    def test_now_mid_burst_flushes_and_matches_reference(self):
        read_points = {3, 17, 40}
        ref_vm = RuntimeEnvironment(gc_threshold_bytes=None,
                                    profiler=SemanticProfiler(),
                                    vm_core="reference")
        fast_vm = RuntimeEnvironment(gc_threshold_bytes=None,
                                     profiler=SemanticProfiler(),
                                     vm_core="fast")
        ref_observed, ref_final = _burst(ref_vm, read_points)
        fast_observed, fast_final = _burst(fast_vm, read_points)
        assert fast_observed == ref_observed, \
            "mid-burst vm.now reads diverge from the reference core"
        assert fast_final == ref_final

    def test_now_drains_the_pending_accumulator(self):
        vm = RuntimeEnvironment(gc_threshold_bytes=None, vm_core="fast")
        lst = ChameleonList(vm)
        lst.pin()
        for i in range(8):
            lst.add(i)
        assert vm.clock.pending > 0, \
            "fast core never batched a charge (test is vacuous)"
        before = vm.clock.pending
        now = vm.now
        assert vm.clock.pending == 0
        assert vm.now == now  # idempotent read: nothing left to fold
        assert now >= before

    def test_finish_flushes_pending(self):
        vm = RuntimeEnvironment(gc_threshold_bytes=None, vm_core="fast")
        lst = ChameleonList(vm)
        lst.pin()
        lst.add(1)
        lst.size()
        vm.finish()
        assert vm.clock.pending == 0


# ----------------------------------------------------------------------
# Plan invalidation (satellite: the inline-cache staleness hazard)
# ----------------------------------------------------------------------


def _toggle_script(vm):
    """Ops interleaved with every plan-invalidating VM transition;
    returns the end-of-run observable record."""
    lst = ChameleonList(vm)
    lst.pin()
    for i in range(10):
        lst.add(i)
    profiler = vm.enable_profiling(SemanticProfiler())
    # Allocated *after* the toggle: profiled under both cores.
    mapping = ChameleonMap(vm)
    mapping.pin()
    for i in range(10):
        mapping.put(i, i)
        lst.get(i)          # pre-toggle instance: stays unprofiled
        mapping.get(i)
    vm.disable_profiling()
    for i in range(10):
        mapping.contains_key(i)
        lst.contains(i)
    vm.enable_profiling()
    vm.set_tracer(None)     # stamp bump, tracer behaviour unchanged
    for i in range(10):
        mapping.put(i, -i)
    vm.finish()
    assert profiler is vm.profiler
    oci = mapping.object_info
    return {
        "ticks": vm.now,
        "counts": list(oci.counts),
        "max_size": oci.max_size,
        "final_size": oci.final_size,
        "unprofiled_stays_unprofiled": lst.object_info is None,
    }


class TestPlanInvalidation:
    def _built(self, vm):
        """A wrapper with a freshly built, current plan."""
        lst = ChameleonList(vm)
        lst.pin()
        lst.add(1)
        assert lst._plan is not None
        assert lst._plan[0] is vm.dispatch_stamp
        return lst

    @pytest.mark.parametrize("bump", [
        lambda vm: vm.enable_profiling(SemanticProfiler()),
        lambda vm: vm.disable_profiling(),
        lambda vm: vm.set_tracer(None),
    ], ids=["enable_profiling", "disable_profiling", "set_tracer"])
    def test_vm_transitions_stale_the_plan(self, bump):
        vm = RuntimeEnvironment(gc_threshold_bytes=None, vm_core="fast")
        lst = self._built(vm)
        stale = lst._plan
        bump(vm)
        assert stale[0] is not vm.dispatch_stamp, \
            "transition did not move the dispatch stamp"
        lst.size()  # next recorded op rebuilds against the new state
        assert lst._plan is not stale
        assert lst._plan[0] is vm.dispatch_stamp

    def test_swap_to_drops_the_plan(self):
        vm = RuntimeEnvironment(gc_threshold_bytes=None, vm_core="fast")
        lst = self._built(vm)
        stale = lst._plan
        lst.swap_to("LinkedList")
        assert lst._plan is None
        lst.add(2)
        rebuilt = lst._plan
        assert rebuilt is not None and rebuilt is not stale
        # The rebuilt plan binds the *new* impl's methods.
        assert rebuilt[7].__self__ is lst.impl

    def test_mid_run_toggles_match_reference(self):
        reference = _toggle_script(
            RuntimeEnvironment(gc_threshold_bytes=None,
                               vm_core="reference"))
        fast = _toggle_script(
            RuntimeEnvironment(gc_threshold_bytes=None, vm_core="fast"))
        assert fast == reference

    def test_swap_to_matches_reference(self):
        def script(vm):
            vm.enable_profiling(SemanticProfiler())
            seto = ChameleonSet(vm)
            seto.pin()
            for i in range(12):
                seto.add(i % 5)
            seto.swap_to("ArraySet")
            for i in range(12):
                seto.contains(i)
            vm.finish()
            return vm.now, list(seto.object_info.counts)

        reference = script(RuntimeEnvironment(gc_threshold_bytes=None,
                                              vm_core="reference"))
        fast = script(RuntimeEnvironment(gc_threshold_bytes=None,
                                         vm_core="fast"))
        assert fast == reference


# ----------------------------------------------------------------------
# The fast allocator: field pinning and rare-branch delegation
# ----------------------------------------------------------------------


class TestFastAllocate:
    def _pair(self, **kwargs):
        return (RuntimeEnvironment(vm_core="reference", **kwargs),
                RuntimeEnvironment(vm_core="fast", **kwargs))

    def test_fast_allocate_matches_reference_fields(self):
        """Pins the HeapObject field list the inlined constructor in
        ``RuntimeEnvironment._install_fast_allocate`` stores by hand: a
        field added to the dataclass without a matching store here must
        fail loudly, not ship objects with missing attributes."""
        ref_vm, fast_vm = self._pair(gc_threshold_bytes=None)
        ref_obj = ref_vm.allocate("T", 20, payload="p", context_id=7)
        fast_obj = fast_vm.allocate("T", 20, payload="p", context_id=7)
        field_names = [f.name for f in dataclasses.fields(HeapObject)]
        assert set(vars(fast_obj)) == set(field_names), \
            "fast allocator stores a different attribute set than the " \
            "dataclass declares"
        for name in field_names:
            assert getattr(fast_obj, name) == getattr(ref_obj, name), \
                f"field {name!r} diverges"
        assert fast_vm.now == ref_vm.now
        assert fast_vm.heap.total_allocated_bytes \
            == ref_vm.heap.total_allocated_bytes

    def test_negative_size_delegates_to_reference_behaviour(self):
        def outcome(vm):
            try:
                obj = vm.allocate("T", -8)
            except Exception as exc:  # noqa: BLE001 - pinned differentially
                return ("raised", type(exc).__name__)
            return ("size", obj.size, vm.now)

        ref_vm, fast_vm = self._pair(gc_threshold_bytes=None)
        assert outcome(fast_vm) == outcome(ref_vm)

    def test_limited_heap_oom_matches_reference(self):
        def fill(vm):
            ticks = []
            with pytest.raises(OutOfMemoryError):
                while True:
                    vm.add_root(vm.allocate("Pinned", 64))
                    ticks.append(vm.now)
            return ticks, vm.heap.total_allocated_objects

        ref_vm, fast_vm = self._pair(heap_limit=2048,
                                     gc_threshold_bytes=None)
        assert fill(fast_vm) == fill(ref_vm)

    def test_allocation_from_death_hook_matches_reference(self):
        def script(vm):
            def resurrectionist(_obj):
                vm.allocate("Shadow", 16)

            vm.allocate("Mortal", 32, on_death=resurrectionist)
            vm.collect()
            vm.collect()  # sweeps the shadow allocated mid-cycle
            return (vm.now, vm.heap.total_allocated_objects,
                    vm.heap.total_freed_objects)

        ref_vm, fast_vm = self._pair(gc_threshold_bytes=None)
        assert script(fast_vm) == script(ref_vm)

    def test_gc_threshold_stays_live(self):
        """The fast closure must read ``gc_threshold_bytes`` per call:
        the perf harness mutates it mid-run to provoke cycles."""
        vm = RuntimeEnvironment(gc_threshold_bytes=None, vm_core="fast")
        for _ in range(8):
            vm.allocate("Garbage", 64)
        assert len(vm.timeline.cycles) == 0
        vm.gc_threshold_bytes = 128
        vm._bytes_since_gc = 0
        for _ in range(8):
            vm.allocate("Garbage", 64)
        assert len(vm.timeline.cycles) > 0


# ----------------------------------------------------------------------
# Core selection plumbing
# ----------------------------------------------------------------------


class TestCoreSelection:
    def test_invalid_core_rejected(self):
        with pytest.raises(ValueError, match="vm_core"):
            RuntimeEnvironment(vm_core="warp")

    def test_env_var_selects_the_core(self, monkeypatch):
        monkeypatch.setenv("REPRO_VM_CORE", "reference")
        vm = RuntimeEnvironment(gc_threshold_bytes=None)
        assert vm.vm_core == "reference"
        assert type(ChameleonList(vm)) is ChameleonList

    def test_explicit_core_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_VM_CORE", "reference")
        vm = RuntimeEnvironment(gc_threshold_bytes=None, vm_core="fast")
        assert vm.vm_core == "fast"

    def test_fast_core_selects_fast_wrapper_classes(self):
        vm = RuntimeEnvironment(gc_threshold_bytes=None, vm_core="fast")
        for cls in (ChameleonList, ChameleonSet, ChameleonMap):
            wrapper = cls(vm)
            assert type(wrapper) is not cls
            assert isinstance(wrapper, cls)

    def test_duck_typed_vm_falls_back_to_reference_classes(self):
        """Test stand-in VMs without a ``vm_core`` attribute must keep
        constructing plain reference wrappers."""

        class _Stub:
            pass

        assert ChameleonList.__new__(ChameleonList, _Stub()).__class__ \
            is ChameleonList
