"""The compiled scenario library as workloads, and registry hygiene."""

import pytest

from repro.runtime.vm import RuntimeEnvironment
from repro.workloads import WorkloadRegistry, default_workload_registry
from repro.workloads.compiled import (SCENARIOS, CompiledTraceWorkload,
                                      HeavyTailWorkload,
                                      MultiTenantWorkload,
                                      PhaseShiftWorkload,
                                      bundled_trace_stems, get_scenario,
                                      load_bundled_program,
                                      load_bundled_trace, make_scenario,
                                      scenario_names)


class TestRegistryDuplicateRejection:
    def test_duplicate_name_is_loud(self):
        registry = WorkloadRegistry()
        registry.register("w", object)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("w", object)

    def test_explicit_overwrite_is_allowed(self):
        registry = WorkloadRegistry()
        registry.register("w", dict)
        registry.register("w", list, overwrite=True)
        assert registry.create("w") == []

    def test_default_registry_has_no_silent_collisions(self):
        # Building it registers benchmarks, controls and every scenario;
        # a collision anywhere would now raise.
        registry = default_workload_registry()
        assert set(scenario_names()) <= set(registry.names())
        assert "tvla" in registry.names()


class TestBundledTraces:
    def test_every_scenario_source_is_bundled(self):
        stems = set(bundled_trace_stems())
        for spec in SCENARIOS.values():
            assert set(spec.sources) <= stems

    def test_bundled_traces_carry_provenance(self):
        for stem in bundled_trace_stems():
            meta = load_bundled_trace(stem).meta
            assert meta["scenario_source"]["seed"] == 2009
            assert meta["scenario_source"]["benchmark"]

    def test_programs_are_cached(self):
        stem = bundled_trace_stems()[0]
        assert load_bundled_program(stem) is load_bundled_program(stem)


class TestScenarioWorkloads:
    def test_unknown_scenario_is_a_key_error(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_fresh_reconstructs_the_same_run(self, name):
        workload = make_scenario(name, seed=7, scale=0.5)
        clone = workload.fresh()
        assert type(clone) is type(workload)
        assert (clone.name, clone.seed, clone.scale) == (name, 7, 0.5)

        def ticks(wl):
            vm = RuntimeEnvironment(gc_threshold_bytes=None)
            wl.run(vm)
            return vm.now

        assert ticks(workload) == ticks(clone)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_describe_names_the_scenario(self, name):
        description = make_scenario(name).describe()
        assert name in description
        assert "compiled" in description

    def test_registry_create_passes_harness_kwargs(self):
        registry = default_workload_registry()
        workload = registry.create("heavy-tail-pmd-set", seed=5, scale=0.4)
        assert isinstance(workload, HeavyTailWorkload)
        assert (workload.seed, workload.scale) == (5, 0.4)

    def test_scale_changes_the_amount_of_work(self):
        def ticks(scale):
            vm = RuntimeEnvironment(gc_threshold_bytes=None)
            make_scenario("compiled-findbugs-map", scale=scale).run(vm)
            return vm.now

        assert ticks(2.0) > ticks(1.0) > ticks(0.25)

    def test_perturbed_rounds_differ_from_verbatim(self):
        # With perturbation active, round 1 executes a sibling program,
        # not the recorded one -- the family is real, not n copies.
        # (pmd-set carries string values; all-handle traces like
        # tvla-map are identity-bearing and legitimately unperturbable.)
        program = load_bundled_program("pmd-set")
        workload = CompiledTraceWorkload(program, "t", rounds=2,
                                         perturb=0.5)
        perturbed = program.perturbed(workload.round_rng(1), 0.5)
        assert perturbed.trace.ops != program.trace.ops

    def test_heavy_tail_lengths_are_heavy_tailed(self):
        workload = make_scenario("heavy-tail-pmd-set")
        program = workload.programs[0]
        lengths = [max(2, int(len(program) * rank ** -workload.alpha))
                   for rank in range(1, workload.instances + 1)]
        assert lengths[0] == len(program)
        assert lengths[-1] <= len(program) // workload.instances * 2
        assert sorted(lengths, reverse=True) == lengths

    def test_phase_shift_spike_raises_peak_footprint(self):
        # Sample held bytes right before each collection: the wave of
        # simultaneously-live instances must dominate the footprint.
        def peak_held(spike):
            vm = RuntimeEnvironment(gc_threshold_bytes=None)
            held = []
            original = vm.collect

            def sampling_collect():
                held.append(vm.heap.total_allocated_bytes
                            - vm.heap.total_freed_bytes)
                original()

            vm.collect = sampling_collect
            PhaseShiftWorkload(load_bundled_program("bloat-list"), "t",
                               quiet_rounds=2, spike=spike,
                               perturb=0.0).run(vm)
            return max(held)

        assert peak_held(12) > 2 * peak_held(1)

    def test_multi_tenant_interleaves_all_programs(self):
        workload = make_scenario("multi-tenant-trio")
        assert isinstance(workload, MultiTenantWorkload)
        assert len(workload.programs) == 3
        kinds = {program.kind for program in workload.programs}
        assert len(kinds) == 3  # list, set and map woven together
        vm = RuntimeEnvironment(gc_threshold_bytes=None)
        workload.run(vm)
        assert vm.now > sum(len(p) for p in workload.programs)
