"""Signature-seeded workloads: spec -> deterministic trace -> scenario."""

import textwrap

import pytest

from repro.collections.base import CollectionKind
from repro.lint.interproc import analyze_source, export_signatures
from repro.runtime.vm import RuntimeEnvironment
from repro.workloads import default_workload_registry
from repro.workloads.compiled import CompiledTraceWorkload
from repro.workloads.signatures import (bundled_signature_specs,
                                        register_signature_scenarios,
                                        scenario_from_signature,
                                        trace_from_signature)


def exported_spec(source, variable=None):
    report = analyze_source(textwrap.dedent(source),
                            "src/repro/workloads/example.py")
    specs = export_signatures(report)
    assert specs
    return specs[0]


LIST_SOURCE = """
    from repro.collections import ChameleonList

    def run(vm):
        buffer = ChameleonList(vm)
        for i in range(18):
            buffer.add(i)
        for i in range(6):
            buffer.contains(i)
        return buffer
"""


class TestTraceSynthesis:
    def test_deterministic(self):
        spec = exported_spec(LIST_SOURCE)
        first = trace_from_signature(spec)
        second = trace_from_signature(spec)
        assert first.to_dict() == second.to_dict()

    def test_realizes_signature_intervals(self):
        spec = exported_spec(LIST_SOURCE)
        trace = trace_from_signature(spec)
        assert trace.kind is CollectionKind.LIST
        assert trace.src_type == "ArrayList"
        adds = sum(1 for op in trace.ops if op[0] == "add")
        lo, hi = spec["ops"]["#add"]
        assert lo <= adds <= (hi if hi is not None else float("inf"))
        # walk the trace concretely: peak must satisfy maxSize
        size = peak = 0
        for op in trace.ops:
            if op[0] in ("add", "add_at"):
                size += 1
            elif op[0] in ("remove_at", "remove_first", "remove_value"):
                size -= 1
            elif op[0] == "clear":
                size = 0
            peak = max(peak, size)
        lo, hi = spec["maxSize"]
        assert lo <= peak <= (hi if hi is not None else float("inf"))

    def test_meta_records_provenance(self):
        spec = exported_spec(LIST_SOURCE)
        trace = trace_from_signature(spec)
        assert trace.meta["generator"] == "signature"
        assert trace.meta["signature"] == spec["name"]

    def test_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            trace_from_signature({"schema": "something-else",
                                  "name": "x", "kind": "list",
                                  "maxSize": [0, 0]})


class TestScenarioRoundTrip:
    def test_spec_becomes_runnable_workload(self):
        spec = exported_spec(LIST_SOURCE)
        workload = scenario_from_signature(spec)
        assert isinstance(workload, CompiledTraceWorkload)
        vm = RuntimeEnvironment()
        workload.run(vm)   # must complete without error

    def test_profiled_peak_within_signature(self):
        from repro.core.chameleon import Chameleon
        from repro.core.config import ToolConfig

        spec = exported_spec(LIST_SOURCE)
        workload = scenario_from_signature(spec, rounds=1, perturb=0.0)
        session = Chameleon(ToolConfig()).profile(workload)
        (profile,) = session.report.profiles
        lo, hi = spec["maxSize"]
        assert profile.info.max_size_stats.max >= lo
        if hi is not None:
            assert profile.info.max_size_stats.max <= hi

    def test_bundled_specs_registered(self):
        specs = bundled_signature_specs()
        assert specs, "at least one signature spec must ship bundled"
        registry = default_workload_registry()
        names = registry.names()
        for spec in specs:
            assert spec["name"] in names
        workload = registry.create(specs[0]["name"])
        vm = RuntimeEnvironment()
        workload.run(vm)

    def test_register_rejects_duplicates(self):
        registry = default_workload_registry()
        with pytest.raises(ValueError):
            register_signature_scenarios(registry)
