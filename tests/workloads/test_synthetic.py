"""The declarative synthetic-workload generator."""

import pytest

from repro.core.chameleon import Chameleon
from repro.workloads.synthetic import ContextSpec, SyntheticWorkload


class TestSpecValidation:
    def test_needs_specs(self):
        with pytest.raises(ValueError):
            SyntheticWorkload([])

    def test_duplicate_names_rejected(self):
        spec = ContextSpec(name="same")
        with pytest.raises(ValueError):
            SyntheticWorkload([spec, spec])

    def test_sizes_cycle(self):
        spec = ContextSpec(name="x", sizes=(1, 5))
        assert [spec.size_for(i) for i in range(4)] == [1, 5, 1, 5]


class TestExecution:
    def test_observed_contents(self):
        workload = SyntheticWorkload([
            ContextSpec(name="maps", src_type="HashMap", instances=2,
                        sizes=(3,)),
            ContextSpec(name="lists", src_type="ArrayList", instances=1,
                        sizes=(2,), removals=1),
        ])
        Chameleon().plain_run(workload)
        assert workload.observed["maps"] == [
            [(0, 0), (1, 10), (2, 20)]] * 2
        assert workload.observed["lists"] == [[1]]  # element 0 removed

    def test_contexts_are_separated(self):
        workload = SyntheticWorkload([
            ContextSpec(name="a", src_type="HashMap", instances=4,
                        sizes=(4,)),
            ContextSpec(name="b", src_type="HashMap", instances=4,
                        sizes=(0,), reads_per_element=0, iterations=1),
        ])
        tool = Chameleon()
        session = tool.profile(workload)
        by_site = {profile.key.site.location: profile
                   for profile in session.report.profiles}
        assert by_site["a"].info.avg_max_size == 4.0
        assert by_site["b"].info.avg_max_size == 0.0

    def test_short_lived_contexts_die(self):
        workload = SyntheticWorkload([
            ContextSpec(name="temp", src_type="HashMap", instances=6,
                        sizes=(2,), long_lived=False)])
        tool = Chameleon()
        session = tool.profile(workload)
        profile = session.report.profiles[0]
        assert profile.info.instances_dead == 6

    def test_expected_rules_fire_on_crafted_specs(self):
        workload = SyntheticWorkload([
            ContextSpec(name="small_maps", src_type="HashMap",
                        instances=16, sizes=(5,)),
            ContextSpec(name="indexed_linked", src_type="LinkedList",
                        instances=4, sizes=(30,), indexed_reads=True),
        ])
        session = Chameleon().profile(workload)
        impls = {s.action.impl_name for s in session.suggestions}
        assert "ArrayMap" in impls
        assert "ArrayList" in impls
