"""Finer-grained checks of the benchmark workloads' §5.3 signatures."""

import pytest

from repro.core.chameleon import Chameleon
from repro.profiler.counters import Op
from repro.workloads import (BloatWorkload, PmdWorkload, SootWorkload,
                             TvlaWorkload)

SCALE = 0.15


@pytest.fixture(scope="module")
def tool():
    return Chameleon()


class TestSootUseBoxesIdiom:
    """'many ArrayLists that are being rolled into other ArrayLists using
    addAll' -- both sides of the interaction must be visible."""

    @pytest.fixture(scope="class")
    def session(self, tool):
        return tool.profile(SootWorkload(scale=SCALE))

    def test_singleton_context_is_copied_from(self, session):
        singleton = next(p for p in session.report.profiles
                         if "_leaf_use_boxes" in p.render_context())
        assert singleton.info.op_mean(Op.COPIED) >= 1.0
        assert singleton.info.avg_max_size == 1.0

    def test_aggregation_contexts_add_all(self, session):
        block = next(p for p in session.report.profiles
                     if "_block_use_boxes" in p.render_context())
        assert block.info.op_mean(Op.ADD_ALL) > 0
        method = next(p for p in session.report.profiles
                      if "_method_use_boxes" in p.render_context())
        assert method.info.op_mean(Op.ADD_ALL) > 0
        # Blocks are themselves copied into the method aggregate.
        assert block.info.op_mean(Op.COPIED) >= 1.0

    def test_block_temporaries_die(self, session):
        block = next(p for p in session.report.profiles
                     if "_block_use_boxes" in p.render_context())
        assert block.info.instances_dead == block.info.instances_allocated

    def test_stable_aggregate_sizes(self, session):
        """The fixed-arity tree keeps aggregation sizes stable, which is
        what lets the capacity rule fire for SOOT."""
        method = next(p for p in session.report.profiles
                      if "_method_use_boxes" in p.render_context())
        assert method.info.max_size_stddev == 0.0


class TestBloatPhases:
    def test_spike_context_never_operated(self, tool):
        session = tool.profile(BloatWorkload(scale=SCALE))
        handlers = next(p for p in session.report.profiles
                        if "_alloc_handler_lists" in p.render_context())
        assert handlers.info.all_ops_mean == 0.0
        assert handlers.src_type == "LinkedList"

    def test_manual_fix_only_touches_the_spike(self, tool):
        """The lazy-allocation source fix removes the handler lists but
        leaves the instruction lists alone."""
        session = tool.profile(BloatWorkload(scale=SCALE,
                                             manual_fixes=True))
        contexts = [p.render_context() for p in session.report.profiles]
        assert not any("_alloc_handler_lists" in c for c in contexts)
        assert any("_alloc_instruction_list" in c for c in contexts)


class TestPmdChurn:
    def test_transient_lists_dominate_allocation(self, tool):
        session = tool.profile(PmdWorkload(scale=SCALE))
        children = next(p for p in session.report.profiles
                        if "_make_children_list" in p.render_context())
        # Massive rapid allocation of short-lived collections.
        assert children.info.instances_allocated >= 2000
        assert children.info.instances_dead == children.info.instances_allocated
        assert children.info.avg_initial_capacity == 50.0

    def test_long_lived_registry_not_flagged(self, tool):
        session = tool.profile(PmdWorkload(scale=SCALE))
        flagged = {s.profile.render_context()
                   for s in session.suggestions}
        assert not any("_make_rule_name_set" in c for c in flagged)
        assert not any("_make_violation_list" in c for c in flagged)


class TestTvlaContexts:
    def test_seven_factories_have_distinct_contexts(self, tool):
        session = tool.profile(TvlaWorkload(scale=SCALE))
        factories = {p.key.site.location
                     for p in session.report.profiles
                     if p.src_type == "HashMap"
                     and "_make_" in p.render_context()}
        assert len(factories) == 7

    def test_factory_contexts_include_the_caller_frame(self, tool):
        """The paper's factory argument: the context's second frame names
        the factory's caller (make_state), which a site-only profile
        could not distinguish across factories' users."""
        session = tool.profile(TvlaWorkload(scale=SCALE))
        profile = next(p for p in session.report.profiles
                       if "_make_unary_map" in p.render_context())
        assert "make_state" in profile.key.frames[1].location
