"""Workload substrate: determinism, signatures, expected suggestions.

These are integration tests at reduced scale; the full-shape assertions
against the paper's numbers live in ``benchmarks/``.
"""

import pytest

from repro.core.chameleon import Chameleon
from repro.rules.ast import ActionKind
from repro.workloads import (BENCHMARKS, CONTROLS, BloatWorkload,
                             DacapoCompressWorkload, FindbugsWorkload,
                             FopWorkload, PmdWorkload, SootWorkload,
                             TvlaWorkload, default_workload_registry)

SCALE = 0.15


@pytest.fixture(scope="module")
def tool():
    return Chameleon()


def _suggested_impls(session):
    return {s.action.impl_name for s in session.suggestions
            if s.action.impl_name}


def _suggested_kinds(session):
    kinds = set()
    for suggestion in session.suggestions:
        kinds.add(suggestion.action.kind)
        for secondary in suggestion.secondary:
            kinds.add(secondary.action.kind)
    return kinds


class TestDeterminism:
    @pytest.mark.parametrize("workload_class", BENCHMARKS + CONTROLS)
    def test_identical_runs(self, tool, workload_class):
        workload = workload_class(scale=SCALE)
        _, first = tool.plain_run(workload)
        _, second = tool.plain_run(workload)
        assert first == second

    def test_scale_controls_size(self, tool):
        _, small = tool.plain_run(TvlaWorkload(scale=0.1))
        _, large = tool.plain_run(TvlaWorkload(scale=0.3))
        assert large.peak_live_bytes > small.peak_live_bytes

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            TvlaWorkload(scale=0)

    def test_describe(self):
        text = TvlaWorkload(seed=7, scale=0.5, manual_fixes=True).describe()
        assert "tvla" in text and "seed=7" in text and "manual" in text


class TestTvlaSignature:
    def test_seven_hashmap_contexts_suggested(self, tool):
        session = tool.profile(TvlaWorkload(scale=SCALE))
        array_map_contexts = [s for s in session.suggestions
                              if s.action.impl_name == "ArrayMap"]
        assert len(array_map_contexts) == 7
        # All seven are HashMap contexts from distinct factories.
        frames = {s.profile.key.site.location for s in array_map_contexts}
        assert len(frames) == 7

    def test_linked_list_context_suggested(self, tool):
        session = tool.profile(TvlaWorkload(scale=SCALE))
        assert "ArrayList" in _suggested_impls(session)

    def test_collections_dominate_live_data(self, tool):
        """The Fig. 2 shape: collections are most of TVLA's heap."""
        session = tool.profile(TvlaWorkload(scale=SCALE))
        timeline = session.report.timeline
        peak = max(s.collection_fraction for s in timeline.cycles)
        assert peak > 0.5


class TestBloatSignature:
    def test_empty_linked_list_context_found(self, tool):
        session = tool.profile(BloatWorkload(scale=SCALE))
        top = session.suggestions[0]
        assert top.profile.src_type == "LinkedList"
        assert top.action.kind in (ActionKind.AVOID_ALLOCATION,
                                   ActionKind.REPLACE)
        assert top.auto_applicable

    def test_spike_visible_in_timeline(self, tool):
        session = tool.profile(BloatWorkload(scale=SCALE))
        fractions = [s.collection_fraction
                     for s in session.report.timeline.cycles]
        assert max(fractions) > 1.5 * fractions[-1]

    def test_manual_fix_removes_the_lists(self, tool):
        _, base = tool.plain_run(BloatWorkload(scale=SCALE))
        _, fixed = tool.plain_run(BloatWorkload(scale=SCALE,
                                                manual_fixes=True))
        assert fixed.peak_live_bytes < 0.6 * base.peak_live_bytes


class TestSootSignature:
    def test_singleton_contexts_found(self, tool):
        session = tool.profile(SootWorkload(scale=SCALE))
        assert "SingletonList" in _suggested_impls(session)

    def test_copied_counters_recorded(self, tool):
        """The useBoxes aggregation produces addAll/copied traffic."""
        from repro.profiler.counters import Op
        session = tool.profile(SootWorkload(scale=SCALE))
        copied_total = sum(info.op_total(Op.COPIED)
                           for info in session.vm.profiler.contexts())
        assert copied_total > 0


class TestFindbugsSignature:
    def test_expected_replacements(self, tool):
        session = tool.profile(FindbugsWorkload(scale=SCALE))
        impls = _suggested_impls(session)
        assert "ArrayMap" in impls
        assert "ArraySet" in impls
        assert "LazyMap" in impls

    def test_capacity_tuning_suggested(self, tool):
        session = tool.profile(FindbugsWorkload(scale=SCALE))
        assert ActionKind.SET_CAPACITY in _suggested_kinds(session)


class TestFopSignature:
    def test_never_used_context_found(self, tool):
        session = tool.profile(FopWorkload(scale=SCALE))
        kinds = {s.action.kind for s in session.suggestions}
        assert ActionKind.AVOID_ALLOCATION in kinds

    def test_array_map_replacement(self, tool):
        session = tool.profile(FopWorkload(scale=SCALE))
        assert "ArrayMap" in _suggested_impls(session)


class TestPmdSignature:
    def test_only_the_oversized_context_fires(self, tool):
        session = tool.profile(PmdWorkload(scale=SCALE))
        assert len(session.suggestions) == 1
        suggestion = session.suggestions[0]
        assert suggestion.action.kind is ActionKind.SET_CAPACITY
        assert suggestion.resolved_capacity <= 4

    def test_no_footprint_win(self, tool):
        workload = PmdWorkload(scale=SCALE)
        session = tool.profile(workload)
        policy = tool.build_policy(session.suggestions)
        _, base = tool.plain_run(workload)
        _, optimized = tool.plain_run(workload, policy=policy)
        assert optimized.peak_live_bytes == pytest.approx(
            base.peak_live_bytes, rel=0.05)

    def test_fewer_gc_cycles_after_fix(self, tool):
        workload = PmdWorkload(scale=0.3)
        session = tool.profile(workload)
        policy = tool.build_policy(session.suggestions)
        _, base = tool.plain_run(workload)
        _, optimized = tool.plain_run(workload, policy=policy)
        assert optimized.gc_cycles < base.gc_cycles


class TestDacapoControls:
    @pytest.mark.parametrize("workload_class", CONTROLS)
    def test_no_significant_suggestions(self, tool, workload_class):
        """'Most of the DaCapo benchmarks do not make intensive use of
        collections ... little potential saving.'"""
        session = tool.profile(workload_class(scale=SCALE))
        assert session.suggestions == []

    def test_hsqldb_collections_invisible_without_custom_map(self, tool):
        """HSQLDB's custom rows register as plain data to the library
        profiler (section 5.1)."""
        session = tool.profile(
            __import__("repro.workloads.dacapo",
                       fromlist=["DacapoHsqldbWorkload"]
                       ).DacapoHsqldbWorkload(scale=SCALE))
        timeline = session.report.timeline
        assert timeline.collection_live.max < 0.1 * timeline.overall_live.max

    def test_compress_heap_is_buffers(self, tool):
        session = tool.profile(DacapoCompressWorkload(scale=SCALE))
        last = session.report.timeline.cycles[-1]
        assert last.type_distribution.get("byte[]", 0) > 0.5 * last.live_data


class TestRegistry:
    def test_registry_covers_all_workloads(self):
        registry = default_workload_registry()
        names = set(registry.names())
        assert {"tvla", "soot", "findbugs", "bloat", "fop", "pmd"} <= names
        workload = registry.create("tvla", scale=0.1)
        assert isinstance(workload, TvlaWorkload)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            default_workload_registry().create("quake")
